//! Closed-loop adaptive window & worker autotuner (paper §III-C/§IV made
//! live).
//!
//! STRONGHOLD picks the working window `m` once, offline, from a warm-up
//! profile ([`crate::analytic::solve_window`]). The runtime, however, emits
//! everything needed to do better while training: how long the compute
//! thread stalls waiting for prefetched layers, how long gradients queue
//! behind busy D2H workers, and whether the CPU optimizer pool drains
//! within the step. This module closes the loop: at every step boundary the
//! [`AutotuneController`] reads those signals and proposes a new
//! [`Tuning`] — window size and `offload`/`compute`/`optimizer` worker
//! counts — which the backend applies *between* steps, where a resize is
//! bit-invisible (window and worker counts never enter the floating-point
//! op sequence; the PR 5/6 equivalence matrices pin that contract).
//!
//! # Decision rules
//! Per-step stall *ratios* (stall nanoseconds ÷ step nanoseconds) drive
//! each knob independently, with asymmetric grow/shrink thresholds:
//!
//! - **window** grows while compute starves on un-prefetched layers
//!   (`fetch_wait` ratio above [`AutotuneConfig::grow_ratio`]) and shrinks
//!   only when compute never waits *and* the prefetcher idles on a full
//!   window (`shell_wait` ratio high) — i.e. the window is provably
//!   oversized. Growth is additionally gated by a latency probe: after a
//!   grow commits, the controller holds every knob for
//!   [`AutotuneConfig::settle_evals`] steps and compares the step-latency
//!   EMA against the pre-grow baseline; a grow that does not pay for
//!   itself ([`AutotuneConfig::min_probe_gain`]) is reverted and the
//!   window locks, so the controller converges to the smallest window
//!   whose marginal step is still profitable instead of racing to the
//!   memory ceiling.
//! - **offload workers** grow while gradient buffers queue behind busy
//!   copy workers (`d2h_wait` ratio) and shrink when the queue is dry.
//! - **spill workers** (PR 9 file tier) grow while the compute thread
//!   waits on file→host fills (`fill_wait` ratio) and shrink when fills
//!   always land ahead of the reader; backends without spilled layers pin
//!   the knob at zero.
//! - **optimizer workers** grow while the pool still has a backlog at the
//!   step boundary and shrink toward one when it always drains in-step.
//! - **compute workers** step toward `min(cap, cores)` — a capability
//!   clamp, since per-sample fan-out has no stall signal of its own.
//!
//! # Hysteresis & convergence
//! A proposal must repeat for [`AutotuneConfig::patience`] consecutive
//! evaluations before it commits, the grow/shrink thresholds are an order
//! of magnitude apart (a band in which the controller holds), and worker
//! knobs are capped at the observed core count so the controller cannot
//! oversubscribe the box it is tuning on. On a steady-state trace (no
//! stalls, empty queues) every knob monotonically steps to its floor or
//! target and then every proposal equals the current tuning — a fixed
//! point reached in a bounded number of evaluations, property-tested in
//! `tests/tests/autotune_prop.rs`.
//!
//! The window never exceeds `m_mem_max` from the analytic plan
//! ([`AutotuneConfig::with_plan`]) — the controller refines the paper's
//! offline solution, it does not get to violate device memory.
//!
//! # Calibration loop
//! The same measured signals validate the offline models:
//! [`calibrate_host`] distills a telemetry snapshot into a
//! [`HostCalibration`] (measured H2D/D2H bandwidths, copy/compute overlap,
//! per-step residual) that `sim::calibration` uses to predict step times
//! within a tested error bound, [`recalibrate_profile`] rewrites a
//! [`LayerProfile`]'s transfer terms from those measured bandwidths so
//! [`crate::analytic::solve_window`] solves on observed numbers, and
//! [`compare_phases`] reports predicted-vs-measured per-phase time ratios.

use crate::analytic::WindowPlan;
use crate::host::device::HostDevice;
use crate::profile::LayerProfile;
use crate::telemetry::{Counter, Gauge, Telemetry};
use stronghold_sim::calibration::HostCalibration;
use stronghold_sim::SimTime;

/// Cumulative stall/backlog signals a backend exposes to the controller.
///
/// The nanosecond fields are monotonically increasing totals measured with
/// always-on wall clocks (they must work with telemetry disabled, because
/// benches time with telemetry off); the controller differences successive
/// samples itself. `optim_backlog` is an instantaneous queue depth sampled
/// at the step boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallSignals {
    /// Total time the compute thread waited for a prefetched layer (the
    /// pipeline's H2D exposure — the paper's window-too-small stall).
    pub fetch_wait_ns: u64,
    /// Total time the prefetcher waited for a free window shell (prefetch
    /// running ahead of compute — evidence the window is large enough).
    pub shell_wait_ns: u64,
    /// Total time gradient buffers waited in the offload queue before a
    /// D2H worker picked them up.
    pub d2h_wait_ns: u64,
    /// Total time the compute thread waited for a file→host fill of a
    /// spilled layer (the PR 9 tier's analogue of `fetch_wait_ns`, one
    /// level down the hierarchy). Zero on backends without a spill tier.
    pub fill_wait_ns: u64,
    /// Optimizer-pool updates still pending at the step boundary.
    pub optim_backlog: u64,
}

/// One live-tunable setting of the runtime: the working window plus the
/// three worker-pool sizes. Knobs a backend does not expose are carried as
/// zero and pinned by that backend's [`TuneLimits`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tuning {
    /// Working window `m` (layers resident on the device at once).
    pub window: usize,
    /// Dedicated gradient-D2H worker threads.
    pub offload_workers: usize,
    /// Per-sample compute fan-out threads.
    pub compute_workers: usize,
    /// CPU optimizer pool actor threads.
    pub optimizer_workers: usize,
    /// File-tier spill/fill worker threads (0 when no layer is spilled).
    pub spill_workers: usize,
}

/// Hard `(min, max)` bounds per knob, declared by the backend. The
/// controller intersects them with the [`AutotuneConfig`] caps and the
/// observed core count; a knob with `min == max` is pinned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneLimits {
    /// Working-window bounds (for the windowed backend, `1..=layers`).
    pub window: (usize, usize),
    /// Offload-worker bounds.
    pub offload_workers: (usize, usize),
    /// Compute-worker bounds.
    pub compute_workers: (usize, usize),
    /// Optimizer-worker bounds.
    pub optimizer_workers: (usize, usize),
    /// Spill-worker bounds (`(0, 0)` pins the knob on backends without a
    /// file tier).
    pub spill_workers: (usize, usize),
}

/// Controller configuration. `Default` is a sane starting point; derive
/// `m_max` from the analytic plan with [`AutotuneConfig::with_plan`].
#[derive(Clone, Copy, Debug)]
pub struct AutotuneConfig {
    /// Hard window ceiling, normally `m_mem_max` from the analytic plan.
    pub m_max: usize,
    /// Cap on offload (gradient D2H) workers.
    pub max_offload_workers: usize,
    /// Cap on per-sample compute workers.
    pub max_compute_workers: usize,
    /// Cap on optimizer-pool workers.
    pub max_optimizer_workers: usize,
    /// Cap on file-tier spill/fill workers.
    pub max_spill_workers: usize,
    /// Stall ratio above which a knob grows.
    pub grow_ratio: f64,
    /// Stall ratio below which a knob shrinks (must sit well under
    /// `grow_ratio`; the gap is the hold band of the hysteresis).
    pub shrink_ratio: f64,
    /// Consecutive identical proposals required before a commit.
    pub patience: u32,
    /// Steps the controller holds after a window grow before judging it.
    pub settle_evals: u32,
    /// Minimum fractional step-latency improvement a window grow must show
    /// during settling, or it is reverted and the window locks.
    pub min_probe_gain: f64,
    /// Observed core count; worker knobs never grow past it.
    pub cores: usize,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            m_max: usize::MAX,
            max_offload_workers: 4,
            max_compute_workers: 4,
            max_optimizer_workers: 8,
            max_spill_workers: 4,
            grow_ratio: 0.05,
            shrink_ratio: 0.005,
            patience: 2,
            settle_evals: 3,
            min_probe_gain: 0.005,
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

impl AutotuneConfig {
    /// Adopts the analytic plan's memory ceiling as the window bound —
    /// the controller refines the offline solution within device memory.
    pub fn with_plan(mut self, plan: &WindowPlan) -> Self {
        self.m_max = plan.m_mem_max.max(1);
        self
    }
}

/// Smoothing factor of the step-latency EMA used by the window probe.
const EMA_ALPHA: f64 = 0.3;

/// State of the window-grow latency probe.
#[derive(Clone, Copy, Debug)]
enum Probe {
    /// No grow under evaluation.
    Idle,
    /// A grow just committed; judge it after `evals_left` more steps.
    Settling { baseline_ns: f64, evals_left: u32 },
}

/// The step-boundary controller. Construct once per engine, feed it the
/// measured step time and cumulative [`StallSignals`] after every step;
/// it returns `Some(Tuning)` when the backend should resize.
///
/// Evaluation is allocation-free (gauges are pre-registered, all state is
/// `Copy`), so a converged controller adds nothing to the zero-allocation
/// steady-state step — pinned in `tests/tests/alloc_regression.rs`.
#[derive(Debug)]
pub struct AutotuneController {
    cfg: AutotuneConfig,
    bounds: TuneLimits,
    current: Tuning,
    pending: Option<Tuning>,
    streak: u32,
    prev: StallSignals,
    ema_ns: f64,
    probe: Probe,
    locked: bool,
    evals: u64,
    resizes: u64,
    g_window: Gauge,
    g_offload: Gauge,
    g_compute: Gauge,
    g_optim: Gauge,
    g_spill: Gauge,
    c_evals: Counter,
    c_resizes: Counter,
}

fn step_toward(cur: usize, target: usize) -> usize {
    match cur.cmp(&target) {
        std::cmp::Ordering::Less => cur + 1,
        std::cmp::Ordering::Greater => cur - 1,
        std::cmp::Ordering::Equal => cur,
    }
}

fn clamp(v: usize, (lo, hi): (usize, usize)) -> usize {
    v.clamp(lo, hi.max(lo))
}

impl AutotuneController {
    /// Builds a controller over a backend's declared `limits`, starting
    /// from the backend's `initial` tuning. Gauges
    /// `autotune.{window,offload_workers,compute_workers,optimizer_workers}`
    /// and counters `autotune.{evals,resizes}` are registered on `tel`.
    pub fn new(cfg: AutotuneConfig, limits: TuneLimits, initial: Tuning, tel: &Telemetry) -> Self {
        let cores = cfg.cores.max(1);
        let bounds = TuneLimits {
            window: (limits.window.0.max(1), limits.window.1.min(cfg.m_max)),
            offload_workers: (
                limits.offload_workers.0,
                limits
                    .offload_workers
                    .1
                    .min(cfg.max_offload_workers)
                    .min(cores),
            ),
            compute_workers: (
                limits.compute_workers.0,
                limits
                    .compute_workers
                    .1
                    .min(cfg.max_compute_workers)
                    .min(cores),
            ),
            optimizer_workers: (
                limits.optimizer_workers.0,
                limits
                    .optimizer_workers
                    .1
                    .min(cfg.max_optimizer_workers)
                    .min(cores),
            ),
            spill_workers: (
                limits.spill_workers.0,
                limits.spill_workers.1.min(cfg.max_spill_workers).min(cores),
            ),
        };
        let ctrl = AutotuneController {
            cfg,
            bounds,
            current: initial,
            pending: None,
            streak: 0,
            prev: StallSignals::default(),
            ema_ns: 0.0,
            probe: Probe::Idle,
            locked: false,
            evals: 0,
            resizes: 0,
            g_window: tel.gauge("autotune.window"),
            g_offload: tel.gauge("autotune.offload_workers"),
            g_compute: tel.gauge("autotune.compute_workers"),
            g_optim: tel.gauge("autotune.optimizer_workers"),
            g_spill: tel.gauge("autotune.spill_workers"),
            c_evals: tel.counter("autotune.evals"),
            c_resizes: tel.counter("autotune.resizes"),
        };
        ctrl.publish();
        ctrl
    }

    /// Feeds one step's measured wall time and the backend's cumulative
    /// signals. Returns the new tuning when a resize should be applied.
    pub fn observe(&mut self, step_ns: u64, signals: StallSignals) -> Option<Tuning> {
        self.evals += 1;
        self.c_evals.incr();
        let delta = StallSignals {
            fetch_wait_ns: signals
                .fetch_wait_ns
                .saturating_sub(self.prev.fetch_wait_ns),
            shell_wait_ns: signals
                .shell_wait_ns
                .saturating_sub(self.prev.shell_wait_ns),
            d2h_wait_ns: signals.d2h_wait_ns.saturating_sub(self.prev.d2h_wait_ns),
            fill_wait_ns: signals.fill_wait_ns.saturating_sub(self.prev.fill_wait_ns),
            optim_backlog: signals.optim_backlog,
        };
        self.prev = signals;
        self.ema_ns = if self.ema_ns == 0.0 {
            step_ns as f64
        } else {
            (1.0 - EMA_ALPHA) * self.ema_ns + EMA_ALPHA * step_ns as f64
        };

        // A window grow under evaluation freezes every knob so the latency
        // EMA isolates the change; an unprofitable grow reverts and locks.
        if let Probe::Settling {
            baseline_ns,
            evals_left,
        } = &mut self.probe
        {
            *evals_left -= 1;
            if *evals_left > 0 {
                self.publish();
                return None;
            }
            let improved = self.ema_ns < *baseline_ns * (1.0 - self.cfg.min_probe_gain);
            self.probe = Probe::Idle;
            if !improved {
                self.locked = true;
                let mut t = self.current;
                t.window = clamp(t.window.saturating_sub(1), self.bounds.window);
                if t != self.current {
                    return Some(self.commit(t));
                }
            }
            self.publish();
            return None;
        }

        let proposal = self.propose(step_ns, delta);
        if proposal == self.current {
            self.pending = None;
            self.streak = 0;
            self.publish();
            return None;
        }
        match self.pending {
            Some(p) if p == proposal => self.streak += 1,
            _ => {
                self.pending = Some(proposal);
                self.streak = 1;
            }
        }
        if self.streak < self.cfg.patience.max(1) {
            self.publish();
            return None;
        }
        let grew_window = proposal.window > self.current.window;
        let committed = self.commit(proposal);
        if grew_window {
            self.probe = Probe::Settling {
                baseline_ns: self.ema_ns,
                evals_left: self.cfg.settle_evals.max(1),
            };
        }
        Some(committed)
    }

    fn propose(&self, step_ns: u64, d: StallSignals) -> Tuning {
        let step = step_ns.max(1) as f64;
        let fetch_r = d.fetch_wait_ns as f64 / step;
        let shell_r = d.shell_wait_ns as f64 / step;
        let d2h_r = d.d2h_wait_ns as f64 / step;
        let fill_r = d.fill_wait_ns as f64 / step;
        let mut t = self.current;

        if !self.locked && fetch_r > self.cfg.grow_ratio && t.window < self.bounds.window.1 {
            t.window += 1;
        } else if fetch_r < self.cfg.shrink_ratio
            && shell_r > self.cfg.grow_ratio
            && t.window > self.bounds.window.0
        {
            t.window -= 1;
        }

        if d2h_r > self.cfg.grow_ratio && t.offload_workers < self.bounds.offload_workers.1 {
            t.offload_workers += 1;
        } else if d2h_r < self.cfg.shrink_ratio && t.offload_workers > self.bounds.offload_workers.0
        {
            t.offload_workers -= 1;
        }

        if fill_r > self.cfg.grow_ratio && t.spill_workers < self.bounds.spill_workers.1 {
            t.spill_workers += 1;
        } else if fill_r < self.cfg.shrink_ratio && t.spill_workers > self.bounds.spill_workers.0 {
            t.spill_workers -= 1;
        }

        if d.optim_backlog > 0 && t.optimizer_workers < self.bounds.optimizer_workers.1 {
            t.optimizer_workers += 1;
        } else if d.optim_backlog == 0 && t.optimizer_workers > self.bounds.optimizer_workers.0 {
            t.optimizer_workers -= 1;
        }

        let compute_target = clamp(self.cfg.cores.max(1), self.bounds.compute_workers);
        t.compute_workers = step_toward(t.compute_workers, compute_target);

        Tuning {
            window: clamp(t.window, self.bounds.window),
            offload_workers: clamp(t.offload_workers, self.bounds.offload_workers),
            compute_workers: clamp(t.compute_workers, self.bounds.compute_workers),
            optimizer_workers: clamp(t.optimizer_workers, self.bounds.optimizer_workers),
            spill_workers: clamp(t.spill_workers, self.bounds.spill_workers),
        }
    }

    fn commit(&mut self, t: Tuning) -> Tuning {
        self.current = t;
        self.pending = None;
        self.streak = 0;
        self.resizes += 1;
        self.c_resizes.incr();
        self.publish();
        t
    }

    fn publish(&self) {
        self.g_window.set(self.current.window as i64);
        self.g_offload.set(self.current.offload_workers as i64);
        self.g_compute.set(self.current.compute_workers as i64);
        self.g_optim.set(self.current.optimizer_workers as i64);
        self.g_spill.set(self.current.spill_workers as i64);
    }

    /// The tuning currently in force.
    pub fn current(&self) -> Tuning {
        self.current
    }

    /// Effective per-knob bounds (backend limits ∩ config caps ∩ cores).
    pub fn bounds(&self) -> TuneLimits {
        self.bounds
    }

    /// Step-boundary evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evals
    }

    /// Resizes committed (including probe reverts).
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// True once an unprofitable window grow was reverted; the window no
    /// longer grows for the rest of the run.
    pub fn window_locked(&self) -> bool {
        self.locked
    }

    /// Smoothed step latency in nanoseconds (0 before the first step).
    pub fn ema_step_ns(&self) -> f64 {
        self.ema_ns
    }
}

/// Distills a telemetry snapshot plus device traffic counters into a
/// [`HostCalibration`]: measured per-step compute busy time, H2D/D2H
/// bandwidths, copy/compute overlap, and the residual host work the phase
/// model does not name. `steps` is the number of training steps the
/// snapshot covers and `wall_ns` their total wall time.
///
/// Requires an *enabled* telemetry (span tracks are the data source).
pub fn calibrate_host(
    tel: &Telemetry,
    device: &HostDevice,
    steps: u64,
    wall_ns: u64,
) -> HostCalibration {
    let (_copy, compute_ns, overlap_ns) = tel.copy_compute_overlap();
    HostCalibration {
        steps: steps.max(1),
        wall_ns,
        compute_ns,
        h2d_bytes: device.h2d_bytes(),
        h2d_busy_ns: tel.track_busy_nanos("h2d-copy"),
        d2h_bytes: device.d2h_bytes(),
        d2h_busy_ns: tel.track_busy_nanos("d2h-copy"),
        overlap_ns,
        spill_read_bytes: tel.counter("spill.f2h_bytes").get(),
        spill_read_busy_ns: tel.track_busy_nanos("spill-read"),
        spill_write_bytes: tel.counter("spill.h2f_bytes").get(),
        spill_write_busy_ns: tel.track_busy_nanos("spill-write"),
    }
}

/// Rewrites a profile's transfer terms from measured bandwidths: `t_c2g`
/// becomes `s_fp / bw_h2d` and `t_g2c` becomes `s_bp / bw_d2h`, so
/// [`crate::analytic::solve_window`] solves the paper's constraint system
/// with this box's observed link speeds instead of profiled one-shot
/// timings. Compute terms are left untouched (they were measured directly).
pub fn recalibrate_profile(profile: &mut LayerProfile, cal: &HostCalibration) {
    let bw_h2d = cal.h2d_bandwidth();
    let bw_d2h = cal.d2h_bandwidth();
    for i in 0..profile.len() {
        if bw_h2d > 0.0 {
            profile.t_c2g[i] = SimTime((profile.s_fp[i] as f64 / bw_h2d).round() as u64);
        }
        if bw_d2h > 0.0 {
            profile.t_g2c[i] = SimTime((profile.s_bp[i] as f64 / bw_d2h).round() as u64);
        }
    }
}

/// Predicted-vs-measured per-phase times for one training configuration:
/// the validation half of the calibration loop.
#[derive(Clone, Copy, Debug)]
pub struct PhaseComparison {
    /// Per-step compute time the profile predicts (Σ t_fp + t_bp).
    pub predicted_compute_ns: u64,
    /// Per-step compute busy time measured on the host ("compute" track).
    pub measured_compute_ns: u64,
    /// Per-step H2D time the profile predicts: every layer fetched once
    /// plus the `n - m` FP→BP refetches the window forces.
    pub predicted_h2d_ns: u64,
    /// Per-step H2D busy time measured on the host ("h2d-copy" track).
    pub measured_h2d_ns: u64,
}

impl PhaseComparison {
    /// measured ÷ predicted compute ratio (1.0 = the model is exact).
    pub fn compute_ratio(&self) -> f64 {
        self.measured_compute_ns as f64 / self.predicted_compute_ns.max(1) as f64
    }

    /// measured ÷ predicted H2D ratio.
    pub fn h2d_ratio(&self) -> f64 {
        self.measured_h2d_ns as f64 / self.predicted_h2d_ns.max(1) as f64
    }
}

/// Compares the analytic model's per-phase predictions for window `m`
/// against a measured [`HostCalibration`].
pub fn compare_phases(profile: &LayerProfile, m: usize, cal: &HostCalibration) -> PhaseComparison {
    let n = profile.len();
    let fetched_once: u64 = profile.t_c2g.iter().map(|t| t.as_nanos()).sum();
    let refetched: u64 = profile
        .t_c2g
        .iter()
        .take(n.saturating_sub(m))
        .map(|t| t.as_nanos())
        .sum();
    let compute: u64 = profile
        .t_fp
        .iter()
        .zip(&profile.t_bp)
        .map(|(f, b)| f.as_nanos() + b.as_nanos())
        .sum();
    let steps = cal.steps.max(1);
    PhaseComparison {
        predicted_compute_ns: compute,
        measured_compute_ns: cal.compute_ns / steps,
        predicted_h2d_ns: fetched_once + refetched,
        measured_h2d_ns: cal.h2d_busy_ns / steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> TuneLimits {
        TuneLimits {
            window: (1, 8),
            offload_workers: (1, 8),
            compute_workers: (1, 8),
            optimizer_workers: (1, 8),
            spill_workers: (1, 8),
        }
    }

    fn cfg() -> AutotuneConfig {
        AutotuneConfig {
            m_max: 6,
            cores: 4,
            ..AutotuneConfig::default()
        }
    }

    fn start() -> Tuning {
        Tuning {
            window: 2,
            offload_workers: 1,
            compute_workers: 1,
            optimizer_workers: 1,
            spill_workers: 1,
        }
    }

    /// Cumulative-signal driver: feeds per-step deltas as running totals.
    struct Trace {
        acc: StallSignals,
    }

    impl Trace {
        fn new() -> Self {
            Trace {
                acc: StallSignals::default(),
            }
        }

        fn step(
            &mut self,
            ctrl: &mut AutotuneController,
            step_ns: u64,
            d: StallSignals,
        ) -> Option<Tuning> {
            self.acc.fetch_wait_ns += d.fetch_wait_ns;
            self.acc.shell_wait_ns += d.shell_wait_ns;
            self.acc.d2h_wait_ns += d.d2h_wait_ns;
            self.acc.fill_wait_ns += d.fill_wait_ns;
            self.acc.optim_backlog = d.optim_backlog;
            ctrl.observe(step_ns, self.acc)
        }
    }

    #[test]
    fn steady_trace_is_fixed_point_for_window() {
        let tel = Telemetry::disabled();
        let mut ctrl = AutotuneController::new(cfg(), limits(), start(), &tel);
        let mut trace = Trace::new();
        // All-zero signals: window holds, workers drain to their floors /
        // targets, then every evaluation proposes the current tuning.
        let mut last_change = 0;
        for i in 1..=64 {
            if trace
                .step(&mut ctrl, 1_000_000, StallSignals::default())
                .is_some()
            {
                last_change = i;
            }
        }
        let settled = ctrl.current();
        assert_eq!(settled.window, 2, "no stall evidence: window must hold");
        assert_eq!(settled.offload_workers, 1);
        assert_eq!(settled.optimizer_workers, 1);
        assert_eq!(settled.compute_workers, 4, "stepped to min(cap, cores)");
        assert!(
            last_change <= 3 * 8 * 2,
            "fixed point reached in bounded evals, last change at {last_change}"
        );
    }

    #[test]
    fn fetch_stalls_grow_window_until_probe_locks() {
        let tel = Telemetry::enabled();
        let mut ctrl = AutotuneController::new(cfg(), limits(), start(), &tel);
        let mut trace = Trace::new();
        let stall = StallSignals {
            fetch_wait_ns: 300_000,
            ..StallSignals::default()
        };
        // Constant latency: grows never pay off, so the first grow must be
        // probed, reverted, and the window locked at its starting size.
        for _ in 0..40 {
            trace.step(&mut ctrl, 1_000_000, stall);
        }
        assert!(ctrl.window_locked(), "unprofitable grow must lock");
        assert_eq!(ctrl.current().window, 2, "revert restores the old window");
        assert!(ctrl.resizes() >= 2, "one grow + one revert");
        assert_eq!(tel.gauge("autotune.window").get(), 2);
        assert_eq!(tel.counter("autotune.evals").get(), 40);
    }

    #[test]
    fn profitable_grows_keep_growing_to_the_ceiling() {
        let tel = Telemetry::disabled();
        let mut ctrl = AutotuneController::new(cfg(), limits(), start(), &tel);
        let mut trace = Trace::new();
        let stall = StallSignals {
            fetch_wait_ns: 300_000,
            ..StallSignals::default()
        };
        // Latency improves 20% after every grow: the probe passes and the
        // window climbs to the m_max ceiling (6 < backend max 8).
        let mut step_ns = 4_000_000u64;
        for _ in 0..200 {
            let before = ctrl.current().window;
            trace.step(&mut ctrl, step_ns, stall);
            if ctrl.current().window > before {
                step_ns = (step_ns as f64 * 0.8) as u64;
            }
        }
        assert_eq!(ctrl.current().window, 6, "stops at m_max, not backend max");
        assert!(!ctrl.window_locked());
    }

    #[test]
    fn d2h_queue_and_backlog_grow_their_pools() {
        let tel = Telemetry::disabled();
        let mut ctrl = AutotuneController::new(cfg(), limits(), start(), &tel);
        let mut trace = Trace::new();
        let stall = StallSignals {
            d2h_wait_ns: 200_000,
            optim_backlog: 3,
            ..StallSignals::default()
        };
        for _ in 0..32 {
            trace.step(&mut ctrl, 1_000_000, stall);
        }
        let t = ctrl.current();
        assert_eq!(t.offload_workers, 4, "capped at cores");
        assert_eq!(t.optimizer_workers, 4, "capped at cores");
        assert_eq!(t.window, 2, "no fetch stalls: window untouched");
    }

    #[test]
    fn fill_waits_grow_spill_workers_and_dry_fills_shrink_them() {
        let tel = Telemetry::disabled();
        let mut ctrl = AutotuneController::new(cfg(), limits(), start(), &tel);
        let mut trace = Trace::new();
        let stall = StallSignals {
            fill_wait_ns: 200_000,
            ..StallSignals::default()
        };
        for _ in 0..32 {
            trace.step(&mut ctrl, 1_000_000, stall);
        }
        let grown = ctrl.current();
        assert_eq!(grown.spill_workers, 4, "fill waits grow to min(cap, cores)");
        assert_eq!(grown.window, 2, "no fetch stalls: window untouched");
        // Fills now always land ahead of the reader: drain back to the floor.
        for _ in 0..32 {
            trace.step(&mut ctrl, 1_000_000, StallSignals::default());
        }
        assert_eq!(ctrl.current().spill_workers, 1, "dry fills shrink to floor");
    }

    #[test]
    fn pinned_spill_knob_never_moves() {
        let tel = Telemetry::disabled();
        let mut pinned = limits();
        pinned.spill_workers = (0, 0);
        let mut initial = start();
        initial.spill_workers = 0;
        let mut ctrl = AutotuneController::new(cfg(), pinned, initial, &tel);
        let mut trace = Trace::new();
        let stall = StallSignals {
            fill_wait_ns: 500_000,
            ..StallSignals::default()
        };
        for _ in 0..16 {
            trace.step(&mut ctrl, 1_000_000, stall);
        }
        assert_eq!(
            ctrl.current().spill_workers,
            0,
            "backends without a file tier pin spill workers at zero"
        );
    }

    #[test]
    fn out_of_bounds_start_is_pulled_into_bounds() {
        let tel = Telemetry::disabled();
        let over = Tuning {
            window: 7,
            offload_workers: 6,
            compute_workers: 6,
            optimizer_workers: 6,
            spill_workers: 6,
        };
        let mut ctrl = AutotuneController::new(
            AutotuneConfig {
                m_max: 3,
                cores: 1,
                ..AutotuneConfig::default()
            },
            limits(),
            over,
            &tel,
        );
        let mut trace = Trace::new();
        for _ in 0..32 {
            let t = trace.step(&mut ctrl, 1_000_000, StallSignals::default());
            if let Some(t) = t {
                assert!(t.window <= 3 && t.window >= 1);
                assert!(t.offload_workers <= 1);
                assert!(t.compute_workers <= 1);
                assert!(t.optimizer_workers <= 1);
            }
        }
        let t = ctrl.current();
        assert_eq!(
            (
                t.window,
                t.offload_workers,
                t.compute_workers,
                t.optimizer_workers
            ),
            (3, 1, 1, 1)
        );
    }

    #[test]
    fn with_plan_adopts_memory_ceiling() {
        let plan = WindowPlan {
            m: 2,
            hard_feasible: true,
            soft_satisfied: true,
            cpu_update_hidden: true,
            async_overhead_ok: true,
            m_mem_max: 5,
        };
        let cfg = AutotuneConfig::default().with_plan(&plan);
        assert_eq!(cfg.m_max, 5);
    }

    #[test]
    fn phase_comparison_ratios() {
        let profile = LayerProfile {
            t_fp: vec![SimTime(100); 4],
            t_bp: vec![SimTime(200); 4],
            t_c2g: vec![SimTime(50); 4],
            t_g2c: vec![SimTime(50); 4],
            s_fp: vec![1000; 4],
            s_bp: vec![2000; 4],
            t_opt_gpu: vec![SimTime(10); 4],
            t_opt_cpu: vec![SimTime(40); 4],
            t_async: SimTime(5),
        };
        let cal = HostCalibration {
            steps: 2,
            wall_ns: 4000,
            compute_ns: 2400, // 1200/step = predicted exactly
            h2d_bytes: 16_000,
            h2d_busy_ns: 600, // 300/step vs predicted 200 + 2 refetches·50 = 300
            d2h_bytes: 8_000,
            d2h_busy_ns: 400,
            overlap_ns: 100,
            ..HostCalibration::default()
        };
        let cmp = compare_phases(&profile, 2, &cal);
        assert_eq!(cmp.predicted_compute_ns, 1200);
        assert_eq!(cmp.predicted_h2d_ns, 300);
        assert!((cmp.compute_ratio() - 1.0).abs() < 1e-9);
        assert!((cmp.h2d_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recalibrate_rewrites_transfer_terms_from_bandwidth() {
        let mut profile = LayerProfile {
            t_fp: vec![SimTime(100); 2],
            t_bp: vec![SimTime(200); 2],
            t_c2g: vec![SimTime(999); 2],
            t_g2c: vec![SimTime(999); 2],
            s_fp: vec![4000; 2],
            s_bp: vec![8000; 2],
            t_opt_gpu: vec![SimTime(10); 2],
            t_opt_cpu: vec![SimTime(40); 2],
            t_async: SimTime(5),
        };
        let cal = HostCalibration {
            steps: 1,
            wall_ns: 10_000,
            compute_ns: 5_000,
            h2d_bytes: 8_000,
            h2d_busy_ns: 4_000, // 2 bytes/ns
            d2h_bytes: 16_000,
            d2h_busy_ns: 4_000, // 4 bytes/ns
            overlap_ns: 0,
            ..HostCalibration::default()
        };
        recalibrate_profile(&mut profile, &cal);
        assert_eq!(profile.t_c2g[0], SimTime(2000), "4000 B at 2 B/ns");
        assert_eq!(profile.t_g2c[0], SimTime(2000), "8000 B at 4 B/ns");
        assert_eq!(profile.t_fp[0], SimTime(100), "compute terms untouched");
    }
}
