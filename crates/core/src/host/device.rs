//! A capacity-limited "device" for the functional substrate.
//!
//! Tracks live device bytes and transfer traffic so the functional pipeline
//! enforces the same invariant the real GPU does: the working window and its
//! activations must fit the device, or allocation fails. The numbers feed
//! the functional tests (footprint stays bounded by the window regardless of
//! model depth).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::telemetry::{Gauge, Telemetry};

/// Device-memory accounting for the host substrate.
#[derive(Debug)]
pub struct HostDevice {
    capacity: AtomicU64,
    used: AtomicU64,
    peak: AtomicU64,
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
    /// Telemetry mirror of `used` ("arena occupancy"); inert by default.
    occupancy: Gauge,
    /// Live H2D copies ("copy-engine occupancy", `device.h2d_inflight`).
    h2d_inflight: Gauge,
    /// Live D2H copies (`device.d2h_inflight`). A peak > 0 while the compute
    /// track is busy is the trace evidence that gradient offload runs off
    /// the compute thread's critical path.
    d2h_inflight: Gauge,
}

impl HostDevice {
    /// Creates a device with `capacity` bytes (no telemetry).
    pub fn new(capacity: u64) -> Self {
        HostDevice::with_telemetry(capacity, &Telemetry::disabled())
    }

    /// Creates a device mirroring its live byte count into the
    /// `device.used_bytes` gauge of `tel`.
    pub fn with_telemetry(capacity: u64, tel: &Telemetry) -> Self {
        HostDevice {
            capacity: AtomicU64::new(capacity),
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            h2d_bytes: AtomicU64::new(0),
            d2h_bytes: AtomicU64::new(0),
            occupancy: tel.gauge("device.used_bytes"),
            h2d_inflight: tel.gauge("device.h2d_inflight"),
            d2h_inflight: tel.gauge("device.d2h_inflight"),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity.load(Ordering::SeqCst)
    }

    /// Re-sizes the arena (the autotuner's window grow/shrink path). Shrink
    /// below the live byte count is rejected — resizes happen between steps
    /// when the arena is expected to be drained, and a shrink must never
    /// strand already-allocated bytes above the new ceiling.
    ///
    /// Traffic counters and the peak watermark are deliberately preserved
    /// across resizes (cumulative history, not per-capacity state).
    ///
    /// # Panics
    /// Panics if `capacity` is below the currently allocated bytes.
    pub fn set_capacity(&self, capacity: u64) {
        let used = self.used.load(Ordering::SeqCst);
        assert!(
            capacity >= used,
            "device resize below live bytes: {capacity} < {used}"
        );
        self.capacity.store(capacity, Ordering::SeqCst);
    }

    /// Attempts to allocate `bytes`; fails (returns `false`) on OOM.
    pub fn try_alloc(&self, bytes: u64) -> bool {
        let mut cur = self.used.load(Ordering::SeqCst);
        loop {
            let next = cur + bytes;
            if next > self.capacity.load(Ordering::SeqCst) {
                return false;
            }
            match self
                .used
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::SeqCst);
                    self.occupancy.add(bytes as i64);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Allocates or panics with an OOM message (scheduler bug in tests).
    pub fn alloc(&self, bytes: u64) {
        assert!(
            self.try_alloc(bytes),
            "device OOM: {} + {} > {}",
            self.used.load(Ordering::SeqCst),
            bytes,
            self.capacity()
        );
    }

    /// Frees `bytes`.
    pub fn free(&self, bytes: u64) {
        let prev = self.used.fetch_sub(bytes, Ordering::SeqCst);
        assert!(prev >= bytes, "device free underflow");
        self.occupancy.add(-(bytes as i64));
    }

    /// Records a host→device copy.
    pub fn count_h2d(&self, bytes: u64) {
        self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a device→host copy.
    pub fn count_d2h(&self, bytes: u64) {
        self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Marks a host→device copy as started (`device.h2d_inflight` +1).
    pub fn begin_h2d(&self) {
        self.h2d_inflight.add(1);
    }

    /// Marks a host→device copy of `bytes` as finished: decrements the
    /// in-flight gauge and records the traffic.
    pub fn end_h2d(&self, bytes: u64) {
        self.h2d_inflight.add(-1);
        self.count_h2d(bytes);
    }

    /// Marks a device→host copy as started (`device.d2h_inflight` +1).
    pub fn begin_d2h(&self) {
        self.d2h_inflight.add(1);
    }

    /// Marks a device→host copy of `bytes` as finished: decrements the
    /// in-flight gauge and records the traffic.
    pub fn end_d2h(&self, bytes: u64) {
        self.d2h_inflight.add(-1);
        self.count_d2h(bytes);
    }

    /// Live bytes.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::SeqCst)
    }

    /// Peak live bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::SeqCst)
    }

    /// Total host→device traffic.
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d_bytes.load(Ordering::Relaxed)
    }

    /// Total device→host traffic.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let d = HostDevice::new(100);
        d.alloc(60);
        assert_eq!(d.used(), 60);
        assert!(!d.try_alloc(50));
        d.free(60);
        assert!(d.try_alloc(100));
        assert_eq!(d.peak(), 100);
    }

    #[test]
    fn live_resize_grows_and_shrinks() {
        let d = HostDevice::new(100);
        d.alloc(80);
        assert!(!d.try_alloc(40));
        d.set_capacity(200);
        assert!(d.try_alloc(40), "grown arena admits the allocation");
        d.free(120);
        d.count_h2d(7);
        d.set_capacity(50);
        assert_eq!(d.capacity(), 50);
        assert!(!d.try_alloc(60));
        assert!(d.try_alloc(50));
        assert_eq!(d.peak(), 120, "peak watermark survives resizes");
        assert_eq!(d.h2d_bytes(), 7, "traffic counters survive resizes");
    }

    #[test]
    #[should_panic(expected = "device resize below live bytes")]
    fn resize_below_live_bytes_panics() {
        let d = HostDevice::new(100);
        d.alloc(60);
        d.set_capacity(59);
    }

    #[test]
    #[should_panic(expected = "device OOM")]
    fn oom_panics() {
        let d = HostDevice::new(10);
        d.alloc(11);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn free_underflow_panics() {
        let d = HostDevice::new(10);
        d.free(1);
    }

    #[test]
    fn traffic_counters() {
        let d = HostDevice::new(10);
        d.count_h2d(5);
        d.count_h2d(7);
        d.count_d2h(3);
        assert_eq!(d.h2d_bytes(), 12);
        assert_eq!(d.d2h_bytes(), 3);
    }

    #[test]
    fn occupancy_gauge_mirrors_used_bytes() {
        let tel = Telemetry::enabled();
        let d = HostDevice::with_telemetry(100, &tel);
        d.alloc(60);
        d.alloc(30);
        d.free(50);
        let g = tel.gauge("device.used_bytes");
        assert_eq!(g.get(), 40);
        assert_eq!(g.peak(), 90);
        assert_eq!(g.get() as u64, d.used());
    }

    #[test]
    fn inflight_gauges_balance_and_record_peaks() {
        let tel = Telemetry::enabled();
        let d = HostDevice::with_telemetry(100, &tel);
        d.begin_h2d();
        d.begin_h2d();
        d.end_h2d(8);
        d.begin_d2h();
        d.end_d2h(4);
        d.end_h2d(8);
        let h2d = tel.gauge("device.h2d_inflight");
        let d2h = tel.gauge("device.d2h_inflight");
        assert_eq!(h2d.get(), 0, "every begin_h2d matched by an end_h2d");
        assert_eq!(d2h.get(), 0, "every begin_d2h matched by an end_d2h");
        assert_eq!(h2d.peak(), 2);
        assert_eq!(d2h.peak(), 1);
        assert_eq!(d.h2d_bytes(), 16);
        assert_eq!(d.d2h_bytes(), 4);
    }

    #[test]
    fn concurrent_allocs_respect_capacity() {
        let d = std::sync::Arc::new(HostDevice::new(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let d2 = std::sync::Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for _ in 0..100 {
                    if d2.try_alloc(10) {
                        got += 10;
                    }
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total <= 1000);
        assert_eq!(d.used(), total);
    }
}
