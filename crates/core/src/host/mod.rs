//! The functional execution substrate: the STRONGHOLD pipeline with real
//! threads and real math.
//!
//! [`offloaded::HostOffloadTrainer`] runs the working-window pipeline — a
//! prefetcher thread materializing layers from the CPU [`LayerStore`](crate::optimpool::LayerStore)
//! (`stronghold-optimpool`), a capacity-limited "device" holding only `m`
//! layer slots, and the concurrent Adam actor pool applying updates as
//! gradients stream off the device. [`resident::HostResidentTrainer`] is an
//! independently-written conventional trainer over the same model; the
//! integration suite asserts the two produce **bit-identical parameters**,
//! which is the paper's §III-A claim that asynchronous offloading introduces
//! no stale updates and does not affect training precision.

//!
//! All three trainers are thin facades over the shared step engine in
//! [`engine`]: the backends own *placement* (where parameters live, how
//! forward/backward fan out), while the engine owns *policy* (gradient
//! clipping, LR schedules, optimizer dispatch, hooks, checkpointing).

//!
//! [`data_parallel::DataParallelTrainer`] composes the above: `w` windowed
//! replicas on rank-sharded batches, with bucketed all-reduce gradient
//! rendezvous through the engine's [`engine::GradSink`] seam.

pub mod autotune;
pub mod data_parallel;
pub mod device;
pub mod engine;
pub mod multistream;
pub mod offloaded;
pub mod profiler;
pub mod resident;

pub use autotune::{AutotuneConfig, AutotuneController, StallSignals, TuneLimits, Tuning};
pub use data_parallel::{AllReduceSink, DataParallelConfig, DataParallelTrainer};
pub use engine::{
    Engine, EngineOptions, GradSink, LocalSink, ParamBackend, PassthroughSink, StepPlan,
    TrainingState,
};
pub use multistream::MultiStreamTrainer;
pub use offloaded::{HostOffloadConfig, HostOffloadTrainer};
pub use resident::HostResidentTrainer;

pub use crate::tier::{SpillPolicy, Tier, TierBandwidths, TierPlan};
