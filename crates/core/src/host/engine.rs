//! The shared training engine: one step pipeline behind all three host
//! trainers.
//!
//! STRONGHOLD's transparency claim (§III-A) is that training semantics do
//! not depend on *where* parameters live — resident in memory, windowed
//! through a device, or shared across streams. This module enforces that
//! claim structurally: the step *policy* (gradient accumulation, global-norm
//! clipping, the learning-rate schedule, hook firing, optimizer dispatch
//! order, telemetry bridging, and checkpoint save/load) is implemented once
//! in [`Engine`], while the placement-specific *mechanism* (how a forward/
//! backward pass materializes layers and where an optimizer update is
//! applied) lives behind the [`ParamBackend`] trait.
//!
//! Bit-identity across backends is preserved by construction: every backend
//! deposits per-layer flat gradients into the same [`StepWorkspace`] layout,
//! so the engine's single clip/LR/dispatch sequence sees identical values in
//! identical order regardless of the backend, and the resident parameter
//! groups (embedding + final LN) are stepped by engine-owned Adam states in
//! one fixed order.
//!
//! The engine also preserves the zero-allocation step contract: the
//! workspace buffers are reused across steps (`flatten_into` clears rather
//! than reallocates), the norm accumulator lives on the stack, and hook
//! dispatch is a `BTreeMap` lookup with no per-fire allocation.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::{Transformer, TransformerGrads};
use stronghold_tensor::Precision;

use crate::adam::{AdamParams, AdamState};
use crate::clip::GlobalNorm;
use crate::error::RuntimeError;
use crate::hooks::{HookCtx, HookPoint, HookRegistry, STEP_SCOPE};
use crate::host::autotune::{AutotuneConfig, AutotuneController, StallSignals, TuneLimits, Tuning};
use crate::schedule::LrSchedule;
use crate::telemetry::{Gauge, Telemetry};

/// Training-policy options shared by every backend.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Adam hyper-parameters. When a schedule is set, `adam.lr` is
    /// overridden per step by [`EngineOptions::schedule`].
    pub adam: AdamParams,
    /// Per-step learning-rate schedule (None → constant `adam.lr`).
    pub schedule: Option<LrSchedule>,
    /// Global gradient-norm clip threshold (None → no clipping; the
    /// gradient bits are then never touched between backward and the
    /// optimizer, preserving historical results exactly).
    pub clip_norm: Option<f32>,
    /// Dispatch each layer's optimizer update as soon as its gradient lands
    /// (during backward) instead of after the whole step. Only takes effect
    /// when `clip_norm` is `None` — whole-step clipping needs every gradient
    /// before any update — and only on backends whose pipeline can stream
    /// (others fall back to deferred dispatch). Both paths are bit-identical.
    pub streaming_dispatch: bool,
    /// Closed-loop window/worker autotuning (None → static configuration).
    /// Takes effect only on backends that declare [`ParamBackend::tune_limits`];
    /// the controller runs at every step boundary and resizes are applied
    /// between steps, bit-identically (window and worker counts never enter
    /// the floating-point op sequence).
    pub autotune: Option<AutotuneConfig>,
    /// Device-residency / transfer precision (the ZeRO-Offload-style
    /// fp16-param/fp32-master split). CPU master weights and Adam moments
    /// always stay FP32; with a half mode the backend streams half-width
    /// parameters H2D and half-width gradients D2H, exactly halving link
    /// traffic and doubling the window an arena budget admits. `F32` (the
    /// default) is bit-identical to the resident trainer; half modes carry
    /// the bounded divergence stated in DESIGN.md. Recorded in every SHTS
    /// checkpoint (which still serializes FP32 masters, so modes cross-load).
    pub precision: Precision,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            adam: AdamParams::default(),
            schedule: None,
            clip_norm: None,
            streaming_dispatch: true,
            autotune: None,
            precision: Precision::F32,
        }
    }
}

/// Per-step policy decisions the engine makes *before* the backward pass so
/// streaming backends can act on them mid-pipeline.
pub struct StepPlan {
    /// Adam hyper-parameters for this step, with the scheduled LR applied.
    pub hp: AdamParams,
    /// Whether the backend may dispatch block updates itself as gradients
    /// land (true only when clipping is off and streaming is enabled). A
    /// backend that streams must set [`StepWorkspace::streamed`]; one that
    /// cannot stream simply ignores the flag.
    pub streaming: bool,
}

/// Engine-owned gradient workspace, reused across steps.
///
/// Backends fill it during [`ParamBackend::forward_backward`]; the engine
/// then clips, schedules and dispatches from it. `block_grads[i]` is layer
/// `i`'s flat gradient in the canonical flatten order; `resident_grads`
/// holds the embedding + final-LN gradients (its `blocks` field is unused
/// by the engine — backends may use it as an accumulation target).
pub struct StepWorkspace {
    /// Per-layer flat gradients, in ascending layer order.
    pub block_grads: Vec<Vec<f32>>,
    /// Resident-group (embedding + final LN) gradient accumulator.
    pub resident_grads: TransformerGrads,
    /// Per-layer squared-norm partials (see [`GlobalNorm::layer_sum_sq`]),
    /// filled by streaming backends whose gradients are gone by the time the
    /// engine computes the norm gauge. Only read when `streamed` is set.
    pub norm_partials: Vec<f64>,
    /// Set by a backend that dispatched its own block updates mid-backward
    /// under [`StepPlan::streaming`]; tells the engine to skip the deferred
    /// dispatch loop and fold `norm_partials` instead of `block_grads`.
    pub streamed: bool,
}

/// Mutable views of the resident parameter groups, in the fixed step order
/// (token, position, final-LN gain, final-LN bias).
pub struct ResidentParamsMut<'a> {
    /// Token embedding table.
    pub token: &'a mut [f32],
    /// Position embedding table.
    pub position: &'a mut [f32],
    /// Final layer-norm gain.
    pub lnf_g: &'a mut [f32],
    /// Final layer-norm bias.
    pub lnf_b: &'a mut [f32],
}

/// Where finished gradients go before the optimizer sees them.
///
/// The engine (and, in the streaming path, the backend's offload workers)
/// hand every completed gradient to the step's `GradSink`, which decides
/// what a "final" gradient means for this trainer:
///
/// * [`LocalSink`] — single-replica training: gradients pass through
///   untouched (the historical behaviour).
/// * `AllReduceSink` (in `host::data_parallel`) — DDP-style data
///   parallelism: gradients rendezvous with the other replicas in bucketed
///   all-reduces before any optimizer update, overlapping communication
///   with the rest of backward on the streaming path.
/// * [`PassthroughSink`] — no optimizer at all: gradients stay in the
///   [`StepWorkspace`] for inspection (gradient-analysis tooling).
///
/// The sink is shared with the backend's worker threads, so it is `&self`
/// throughout and must be `Send + Sync`.
pub trait GradSink: Send + Sync {
    /// Streaming hand-off: layer `layer`'s flat gradient is complete and
    /// owned by `grad`. The sink forwards it (possibly later, possibly
    /// together with other layers) to `deliver`, which routes it into the
    /// backend's optimizer pipeline. Called from backend worker threads.
    fn layer_ready(&self, layer: usize, grad: Vec<f32>, deliver: &(dyn Fn(usize, Vec<f32>) + Sync));
    /// Deferred hand-off: the whole step's per-layer gradients, reduced in
    /// place before clipping / dispatch. `grads[i]` is layer `i`'s flat
    /// gradient.
    fn reduce_step(&self, grads: &mut [Vec<f32>]);
    /// Reduces the resident parameter-group gradients in the fixed step
    /// order (token, position, final-LN gain, final-LN bias). Called every
    /// step, streaming or not — resident gradients never stream.
    fn reduce_resident(&self, groups: [&mut [f32]; 4]);
    /// Whether the engine should run optimizer updates this step. `false`
    /// leaves parameters untouched with the gradients still inspectable.
    fn apply_updates(&self) -> bool {
        true
    }
}

/// The identity sink: every gradient is final as produced (single-replica
/// training).
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalSink;

impl GradSink for LocalSink {
    fn layer_ready(
        &self,
        layer: usize,
        grad: Vec<f32>,
        deliver: &(dyn Fn(usize, Vec<f32>) + Sync),
    ) {
        deliver(layer, grad);
    }
    fn reduce_step(&self, _grads: &mut [Vec<f32>]) {}
    fn reduce_resident(&self, _groups: [&mut [f32]; 4]) {}
}

/// A sink that swallows updates: gradients are computed and left in the
/// workspace, but no optimizer state or parameter changes.
#[derive(Clone, Copy, Debug, Default)]
pub struct PassthroughSink;

impl GradSink for PassthroughSink {
    fn layer_ready(
        &self,
        _layer: usize,
        _grad: Vec<f32>,
        _deliver: &(dyn Fn(usize, Vec<f32>) + Sync),
    ) {
    }
    fn reduce_step(&self, _grads: &mut [Vec<f32>]) {}
    fn reduce_resident(&self, _groups: [&mut [f32]; 4]) {}
    fn apply_updates(&self) -> bool {
        false
    }
}

/// A parameter-placement backend: the mechanism half of a trainer.
///
/// Implementations own the model parameters (wherever they live) and the
/// machinery to run a forward/backward pass over them; the [`Engine`] owns
/// everything else. The contract for [`ParamBackend::forward_backward`]:
/// zero and then fill `ws.block_grads` (one flat vector per layer, batch
/// mean-scaled) and `ws.resident_grads`, fire per-layer hooks at the
/// backend's true pipeline positions, and return the mean loss. When
/// `plan.streaming` is false no optimizer work happens there — the engine
/// dispatches updates afterwards through
/// [`ParamBackend::dispatch_block_update`] so that clipping and the LR
/// schedule see the whole step's gradients. When `plan.streaming` is true a
/// pipelined backend may instead submit each block's update itself (with
/// `plan.hp`) as soon as that layer's gradient is complete, overlapping the
/// optimizer with the rest of backward; it must then set `ws.streamed`, and
/// fill `ws.norm_partials[i]` (via [`GlobalNorm::layer_sum_sq`]) whenever
/// telemetry is enabled so the engine can still publish `step.grad_norm`.
pub trait ParamBackend {
    /// Model configuration.
    fn config(&self) -> ModelConfig;
    /// Number of transformer blocks.
    fn num_blocks(&self) -> usize;
    /// The telemetry handle the backend records into.
    fn telemetry(&self) -> &Telemetry;
    /// A zeroed resident-group gradient accumulator shaped for this model.
    fn new_resident_grads(&self) -> TransformerGrads;
    /// Runs one forward/backward pass over `batch`, filling `ws` and firing
    /// per-layer `hooks`; returns the mean loss (or, for a rank of a
    /// data-parallel group, the raw shard loss partial — see
    /// `host::data_parallel`). On the streaming path every finished layer
    /// gradient must be routed through `sink.layer_ready` rather than
    /// submitted directly, so a reducing sink can rendezvous it first.
    fn forward_backward(
        &mut self,
        batch: &[(Vec<u32>, Vec<u32>)],
        ws: &mut StepWorkspace,
        hooks: &mut HookRegistry,
        iteration: u64,
        plan: &StepPlan,
        sink: &dyn GradSink,
    ) -> f32;
    /// Applies (or dispatches asynchronously) layer `i`'s optimizer update
    /// with the hyper-parameters chosen by the engine for this step.
    fn dispatch_block_update(&mut self, layer: usize, grads: &[f32], hp: &AdamParams);
    /// Mutable access to the resident parameter groups.
    fn resident_params_mut(&mut self) -> ResidentParamsMut<'_>;
    /// Post-dispatch cleanup for the step (e.g. a barrier on async updates).
    fn finish_step(&mut self) {}
    /// Mean loss over a batch without updating.
    fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32;
    /// Serializes the full model (config + parameters) as a
    /// [`stronghold_model::serialize`] container. Callers flush first.
    fn model_blob(&self) -> Bytes;
    /// Snapshot of layer `i`'s Adam state. Callers flush first.
    fn block_adam_snapshot(&self, layer: usize) -> AdamState;
    /// Blocks until every in-flight optimizer update has been applied.
    fn flush(&self) {}
    /// Live-tunable knob bounds, or `None` when the backend has no
    /// runtime-resizable knobs (the resident backend). Declaring limits
    /// opts the backend into [`EngineOptions::autotune`].
    fn tune_limits(&self) -> Option<TuneLimits> {
        None
    }
    /// The knob settings currently in force (zeros for knobs the backend
    /// does not expose).
    fn current_tuning(&self) -> Tuning {
        Tuning::default()
    }
    /// Applies a controller decision. Called only between steps; the
    /// backend must keep results bit-identical across any resize.
    fn apply_tuning(&mut self, _t: Tuning) {}
    /// Cumulative stall/backlog signals driving the controller. Must be
    /// measured with always-on clocks (telemetry may be disabled).
    fn stall_signals(&self) -> StallSignals {
        StallSignals::default()
    }
}

/// Magic for the universal training-state container: `SHTS`.
pub const STATE_MAGIC: u32 = 0x5348_5453;
/// Training-state format version. Bumped whenever the layout changes; load
/// fails with [`RuntimeError::Checkpoint`] on any other value. Version 2
/// added the precision tag + flags bytes after the version byte.
pub const STATE_VERSION: u8 = 2;
/// Flags bit 0: the serialized parameters are full-precision FP32 masters
/// (always set by [`Engine::save_training_state`] — masters never leave the
/// CPU store at reduced precision). A blob without this bit carries
/// device-rounded values and can only resume under its recorded precision.
pub const STATE_FLAG_FP32_MASTERS: u8 = 1;

/// A decoded training-state blob: everything needed to resume bit-exactly.
pub struct TrainingState {
    /// Completed optimizer steps at save time (drives the LR schedule).
    pub step: u64,
    /// The model (config + parameters).
    pub model: Transformer,
    /// Per-block Adam states, in layer order.
    pub block_adams: Vec<AdamState>,
    /// Resident-group Adam states: token, position, lnf gain, lnf bias.
    pub resident_adams: [AdamState; 4],
    /// Precision mode the trainer was running when the state was saved.
    pub precision: Precision,
    /// Whether the serialized parameters are FP32 masters (see
    /// [`STATE_FLAG_FP32_MASTERS`]). When set, the blob resumes bit-exactly
    /// under *any* precision mode; when clear, only under `precision`.
    pub fp32_masters: bool,
}

fn bad(msg: String) -> RuntimeError {
    RuntimeError::Checkpoint(msg)
}

fn get_adam(blob: &mut Bytes, expect: usize, what: &str) -> Result<AdamState, RuntimeError> {
    if blob.remaining() < 16 {
        return Err(bad(format!("{what}: truncated adam header")));
    }
    let t = blob.get_u64_le();
    let n = blob.get_u64_le() as usize;
    if n != expect {
        return Err(bad(format!(
            "{what}: {n} moment elements, model expects {expect}"
        )));
    }
    if blob.remaining() < n * 8 {
        return Err(bad(format!(
            "{what}: need {} moment bytes, have {}",
            n * 8,
            blob.remaining()
        )));
    }
    let m = (0..n).map(|_| blob.get_f32_le()).collect();
    let v = (0..n).map(|_| blob.get_f32_le()).collect();
    Ok(AdamState { m, v, t })
}

fn put_adam(buf: &mut BytesMut, st: &AdamState) {
    buf.put_u64_le(st.t);
    buf.put_u64_le(st.m.len() as u64);
    buf.reserve(st.m.len() * 8);
    for v in st.m.iter().chain(st.v.iter()) {
        buf.put_f32_le(*v);
    }
}

impl TrainingState {
    /// Parses and validates a training-state blob. Every failure mode —
    /// wrong magic, unknown version, truncation, trailing bytes, or
    /// optimizer state that does not match the embedded model — is a typed
    /// [`RuntimeError::Checkpoint`], never a panic.
    pub fn decode(mut blob: Bytes) -> Result<TrainingState, RuntimeError> {
        if blob.remaining() < 4 + 1 + 1 + 1 + 8 + 8 {
            return Err(bad(format!(
                "header: need {} bytes, have {}",
                4 + 1 + 1 + 1 + 8 + 8,
                blob.remaining()
            )));
        }
        let magic = blob.get_u32();
        if magic != STATE_MAGIC {
            return Err(bad(format!("bad magic {magic:#010x}")));
        }
        let version = blob.get_u8();
        if version != STATE_VERSION {
            return Err(bad(format!(
                "unsupported training-state version {version} (this build reads {STATE_VERSION})"
            )));
        }
        let prec_tag = blob.get_u8();
        let precision = Precision::from_tag(prec_tag)
            .ok_or_else(|| bad(format!("unknown precision tag {prec_tag}")))?;
        let flags = blob.get_u8();
        if flags & !STATE_FLAG_FP32_MASTERS != 0 {
            return Err(bad(format!("unknown state flags {flags:#04x}")));
        }
        let fp32_masters = flags & STATE_FLAG_FP32_MASTERS != 0;
        let step = blob.get_u64_le();
        let model_len = blob.get_u64_le() as usize;
        if blob.remaining() < model_len {
            return Err(bad(format!(
                "model blob: need {model_len} bytes, have {}",
                blob.remaining()
            )));
        }
        let model = stronghold_model::serialize::load(blob.split_to(model_len))
            .map_err(|e| bad(format!("model blob: {e}")))?;
        if blob.remaining() < 8 {
            return Err(bad("block count: truncated".into()));
        }
        let nblocks = blob.get_u64_le() as usize;
        if nblocks != model.blocks.len() {
            return Err(bad(format!(
                "blob has {nblocks} block optimizer states, model has {} blocks",
                model.blocks.len()
            )));
        }
        let block_adams = (0..nblocks)
            .map(|i| {
                get_adam(
                    &mut blob,
                    model.blocks[i].param_count(),
                    &format!("block {i} adam"),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let token = get_adam(&mut blob, model.embedding.token.numel(), "token adam")?;
        let position = get_adam(&mut blob, model.embedding.position.numel(), "position adam")?;
        let lnf_g = get_adam(&mut blob, model.lnf_g.numel(), "lnf gain adam")?;
        let lnf_b = get_adam(&mut blob, model.lnf_b.numel(), "lnf bias adam")?;
        if blob.has_remaining() {
            return Err(bad(format!(
                "{} trailing bytes in training state",
                blob.remaining()
            )));
        }
        Ok(TrainingState {
            step,
            model,
            block_adams,
            resident_adams: [token, position, lnf_g, lnf_b],
            precision,
            fp32_masters,
        })
    }

    /// Fails with [`RuntimeError::Checkpoint`] if the blob's embedded model
    /// configuration differs from the one the caller intends to train.
    pub fn expect_config(&self, cfg: &ModelConfig) -> Result<(), RuntimeError> {
        if self.model.cfg != *cfg {
            return Err(bad(format!(
                "config mismatch: blob was saved with {:?}, trainer expects {cfg:?}",
                self.model.cfg
            )));
        }
        Ok(())
    }

    /// Fails with [`RuntimeError::Checkpoint`] if the blob can only resume
    /// under its recorded precision and the caller wants a different one.
    /// Blobs carrying FP32 masters (everything [`Engine::save_training_state`]
    /// writes) cross-load freely — a bf16 run's checkpoint resumes bit-exactly
    /// under f32 and vice versa, because the masters *are* the f32 state.
    pub fn expect_precision(&self, precision: Precision) -> Result<(), RuntimeError> {
        if !self.fp32_masters && self.precision != precision {
            return Err(bad(format!(
                "precision mismatch: blob holds device-rounded {} values (no FP32 \
                 masters), trainer expects {}",
                self.precision.name(),
                precision.name()
            )));
        }
        Ok(())
    }
}

fn scale_in_place(v: &mut [f32], s: f32) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// Gauges publish fractional values as fixed-point ×10⁶ integers (the
/// telemetry layer's gauges are `i64`).
fn fixed_point_x1e6(v: f32) -> i64 {
    (v as f64 * 1e6).round() as i64
}

/// The shared training engine over a [`ParamBackend`].
pub struct Engine<B: ParamBackend> {
    backend: B,
    opts: EngineOptions,
    hooks: HookRegistry,
    ws: StepWorkspace,
    sink: std::sync::Arc<dyn GradSink>,
    step: u64,
    token_adam: AdamState,
    pos_adam: AdamState,
    lnf_g_adam: AdamState,
    lnf_b_adam: AdamState,
    tel: Telemetry,
    lr_gauge: Gauge,
    norm_gauge: Gauge,
    autotune: Option<AutotuneController>,
}

impl<B: ParamBackend> Engine<B> {
    /// Wraps a freshly-constructed backend with zero optimizer state and
    /// the identity [`LocalSink`].
    pub fn new(backend: B, opts: EngineOptions) -> Self {
        Engine::with_sink(backend, opts, std::sync::Arc::new(LocalSink))
    }

    /// Wraps a backend with an explicit gradient sink (the data-parallel
    /// trainer installs its bucketed all-reduce sink here).
    pub fn with_sink(backend: B, opts: EngineOptions, sink: std::sync::Arc<dyn GradSink>) -> Self {
        let cfg = backend.config();
        let n = backend.num_blocks();
        let ws = StepWorkspace {
            block_grads: vec![Vec::new(); n],
            resident_grads: backend.new_resident_grads(),
            norm_partials: vec![0.0; n],
            streamed: false,
        };
        let tel = backend.telemetry().clone();
        let lr_gauge = tel.gauge("step.lr");
        let norm_gauge = tel.gauge("step.grad_norm");
        let autotune = opts.autotune.and_then(|cfg| {
            backend
                .tune_limits()
                .map(|limits| AutotuneController::new(cfg, limits, backend.current_tuning(), &tel))
        });
        Engine {
            backend,
            opts,
            hooks: HookRegistry::new(),
            ws,
            sink,
            step: 0,
            token_adam: AdamState::new(cfg.vocab * cfg.hidden),
            pos_adam: AdamState::new(cfg.seq * cfg.hidden),
            lnf_g_adam: AdamState::new(cfg.hidden),
            lnf_b_adam: AdamState::new(cfg.hidden),
            tel,
            lr_gauge,
            norm_gauge,
            autotune,
        }
    }

    /// Wraps a backend restored from a checkpoint, adopting the saved step
    /// counter and resident-group Adam states. (Block Adam states travel
    /// inside the backend, which owns their storage.)
    pub fn resume(backend: B, opts: EngineOptions, step: u64, resident: [AdamState; 4]) -> Self {
        let mut e = Engine::new(backend, opts);
        let [token, position, lnf_g, lnf_b] = resident;
        e.token_adam = token;
        e.pos_adam = position;
        e.lnf_g_adam = lnf_g;
        e.lnf_b_adam = lnf_b;
        e.step = step;
        e
    }

    /// Completed optimizer steps (drives the LR schedule and hook contexts).
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The hook registry; register callbacks here before training.
    pub fn hooks_mut(&mut self) -> &mut HookRegistry {
        &mut self.hooks
    }

    /// Read access to the hook registry.
    pub fn hooks(&self) -> &HookRegistry {
        &self.hooks
    }

    /// The telemetry handle the engine and backend record into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// The placement backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the placement backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The autotune controller, when [`EngineOptions::autotune`] is set and
    /// the backend declares tunable limits.
    pub fn autotune(&self) -> Option<&AutotuneController> {
        self.autotune.as_ref()
    }

    /// Forces a knob setting onto the backend, bypassing the controller —
    /// the equivalence suite drives scheduled resizes through this to prove
    /// mid-run resizing is bit-invisible.
    pub fn force_tuning(&mut self, t: Tuning) {
        self.backend.apply_tuning(t);
    }

    /// One training step over a batch; returns the mean loss.
    ///
    /// This is the *only* site in the crate that sequences clip → LR
    /// schedule → optimizer dispatch, so the step semantics cannot drift
    /// between backends.
    pub fn train_step(&mut self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        assert!(!batch.is_empty());
        // Wall-clock the step only when a controller consumes it.
        let tune_t0 = self.autotune.as_ref().map(|_| std::time::Instant::now());
        // The per-step hyper-parameters are fixed *before* the pass so a
        // streaming backend can dispatch optimizer updates mid-backward
        // with the same scheduled LR the deferred path would use.
        let mut hp = self.opts.adam;
        if let Some(schedule) = self.opts.schedule {
            hp.lr = schedule.at(self.step);
        }
        // Streaming requires clipping off: whole-step clipping must see
        // every gradient before any update is applied.
        let plan = StepPlan {
            hp,
            streaming: self.opts.streaming_dispatch && self.opts.clip_norm.is_none(),
        };
        self.ws.streamed = false;
        if plan.streaming && self.tel.is_enabled() {
            self.ws.norm_partials.fill(0.0);
        }
        let loss = self.backend.forward_backward(
            batch,
            &mut self.ws,
            &mut self.hooks,
            self.step,
            &plan,
            &*self.sink,
        );

        // Gradient rendezvous: on the streaming path the sink already saw
        // every block gradient via `layer_ready`; on the deferred path it
        // reduces the whole step here. The resident groups never stream.
        // Either way this happens *before* the norm, so clipping sees the
        // reduced (e.g. replica-summed) gradients — exactly what a
        // single-replica run over the global batch would clip.
        if !self.ws.streamed {
            self.sink.reduce_step(&mut self.ws.block_grads);
        }
        {
            let rg = &mut self.ws.resident_grads;
            self.sink.reduce_resident([
                rg.embedding.token.data_mut(),
                rg.embedding.position.data_mut(),
                rg.lnf_g.data_mut(),
                rg.lnf_b.data_mut(),
            ]);
        }

        // Global gradient norm: a deterministic layer-ordered reduction
        // (blocks ascending, then token, position, lnf gain, lnf bias).
        // Computed only when clipping or telemetry needs it; reading the
        // gradients cannot perturb them, so enabling telemetry stays
        // bit-neutral. A streamed step folds the per-layer f64 partials the
        // backend recorded (the block gradients are already in flight to the
        // optimizer); the fold order and arithmetic are identical, so the
        // gauge value matches the deferred path bit-for-bit.
        let mut clip_scale = 1.0f32;
        if self.opts.clip_norm.is_some() || self.tel.is_enabled() {
            let mut acc = GlobalNorm::new();
            if self.ws.streamed {
                for part in &self.ws.norm_partials {
                    acc.add_layer_sum_sq(*part);
                }
            } else {
                for g in &self.ws.block_grads {
                    acc.add_layer(g);
                }
            }
            let rg = &self.ws.resident_grads;
            acc.add_layer(rg.embedding.token.data());
            acc.add_layer(rg.embedding.position.data());
            acc.add_layer(rg.lnf_g.data());
            acc.add_layer(rg.lnf_b.data());
            self.norm_gauge.set(fixed_point_x1e6(acc.norm()));
            if let Some(max_norm) = self.opts.clip_norm {
                clip_scale = acc.clip_scale(max_norm);
            }
        }
        // A streamed step can never need scaling: streaming is only planned
        // when clipping is off, so the scale is exactly 1.0.
        debug_assert!(!(self.ws.streamed && clip_scale != 1.0));
        // With clipping disabled (or within budget) the scale is exactly 1.0
        // and the gradient bits are never touched.
        if clip_scale != 1.0 {
            for g in self.ws.block_grads.iter_mut() {
                scale_in_place(g, clip_scale);
            }
            let rg = &mut self.ws.resident_grads;
            scale_in_place(rg.embedding.token.data_mut(), clip_scale);
            scale_in_place(rg.embedding.position.data_mut(), clip_scale);
            scale_in_place(rg.lnf_g.data_mut(), clip_scale);
            scale_in_place(rg.lnf_b.data_mut(), clip_scale);
        }

        self.lr_gauge.set(fixed_point_x1e6(hp.lr));

        // Optimizer dispatch: per-block updates in ascending layer order
        // (resident applies inline; windowed/multistream hand off to the
        // concurrent actor pool), then the resident groups in fixed order.
        // A streamed step already submitted the block updates mid-backward.
        // A passthrough sink suppresses updates entirely.
        if self.sink.apply_updates() {
            if !self.ws.streamed {
                for (i, g) in self.ws.block_grads.iter().enumerate() {
                    self.backend.dispatch_block_update(i, g, &hp);
                }
            }
            let rg = &self.ws.resident_grads;
            let rp = self.backend.resident_params_mut();
            self.token_adam
                .step(rp.token, rg.embedding.token.data(), &hp);
            self.pos_adam
                .step(rp.position, rg.embedding.position.data(), &hp);
            self.lnf_g_adam.step(rp.lnf_g, rg.lnf_g.data(), &hp);
            self.lnf_b_adam.step(rp.lnf_b, rg.lnf_b.data(), &hp);
        }
        self.backend.finish_step();

        let ctx = HookCtx {
            layer: STEP_SCOPE,
            iteration: self.step,
            micro_batch: 0,
        };
        self.hooks.fire(STEP_SCOPE, HookPoint::PostStep, &ctx);
        self.step += 1;
        // Publish cumulative GEMM kernel throughput (read-only bridge, so
        // it cannot perturb the step it reports on).
        crate::telemetry::record_kernel_stats(&self.tel);
        // Closed-loop autotuning: evaluate at the step boundary, resize
        // between steps. Evaluation is allocation-free; a resize is rare
        // and may allocate (exempt from the zero-allocation contract).
        if let (Some(ctrl), Some(t0)) = (self.autotune.as_mut(), tune_t0) {
            let signals = self.backend.stall_signals();
            if let Some(t) = ctrl.observe(t0.elapsed().as_nanos() as u64, signals) {
                self.backend.apply_tuning(t);
            }
        }
        loss
    }

    /// Mean loss over a batch without updating (evaluation).
    pub fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.backend.eval_loss(batch)
    }

    /// Serializes the *full* training state — format version, step counter,
    /// model parameters, and every Adam moment — so training resumes
    /// **bit-exactly** on any backend (the fine-tuning checkpoint/resume
    /// workflow of §III-G).
    pub fn save_training_state(&self) -> Bytes {
        self.backend.flush();
        let model_blob = self.backend.model_blob();
        let mut buf = BytesMut::new();
        buf.put_u32(STATE_MAGIC);
        buf.put_u8(STATE_VERSION);
        buf.put_u8(self.opts.precision.tag());
        // The model blob is read from the CPU store, which always holds
        // full-precision masters — never the device's rounded copies.
        buf.put_u8(STATE_FLAG_FP32_MASTERS);
        buf.put_u64_le(self.step);
        buf.put_u64_le(model_blob.len() as u64);
        buf.extend_from_slice(&model_blob);
        let n = self.backend.num_blocks();
        buf.put_u64_le(n as u64);
        for i in 0..n {
            put_adam(&mut buf, &self.backend.block_adam_snapshot(i));
        }
        for st in [
            &self.token_adam,
            &self.pos_adam,
            &self.lnf_g_adam,
            &self.lnf_b_adam,
        ] {
            put_adam(&mut buf, st);
        }
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_rounds() {
        assert_eq!(fixed_point_x1e6(1.5e-4), 150);
        assert_eq!(fixed_point_x1e6(0.0), 0);
        assert_eq!(fixed_point_x1e6(2.0), 2_000_000);
    }

    #[test]
    fn decode_rejects_garbage() {
        let e = TrainingState::decode(Bytes::from(vec![0u8; 3]))
            .err()
            .expect("must fail");
        assert!(matches!(e, RuntimeError::Checkpoint(_)), "{e}");
        let e = TrainingState::decode(Bytes::from(vec![0u8; 64]))
            .err()
            .expect("must fail");
        assert!(matches!(e, RuntimeError::Checkpoint(_)), "{e}");
    }
}
