//! The offloaded trainer: STRONGHOLD's working-window pipeline with real
//! threads and real tensor math.
//!
//! Roles (mirroring Fig. 3):
//!
//! * **CPU store** — [`LayerStore`] holds every block's parameters and Adam
//!   state in "pinned host memory";
//! * **prefetcher thread** — the H2D copy engine: materializes layers into
//!   reusable device *shells* (the §III-E3 buffer pool) in FP order and then
//!   in BP order, blocking when no shell is free (the window bound) or when
//!   a layer's update from the previous iteration is still pending;
//! * **compute thread** — runs FP/BP batch-major with activation
//!   checkpointing, keeps the last `m` layers resident across the FP→BP
//!   turn, and streams gradients off-device as each layer's backward ends;
//! * **optimizer pool** — [`OptimizerPool`] actors apply Adam concurrently
//!   with the remaining backward work (§III-E1).
//!
//! The pipeline is constructed so its floating-point operation sequence is
//! *identical* to [`HostResidentTrainer`](crate::host::resident::HostResidentTrainer)'s
//! — the equivalence tests assert bit-equal parameters after training.

use std::sync::Arc;

use crossbeam_channel::bounded;
use stronghold_model::block::{Block, BlockGrads};
use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::Transformer;
use stronghold_tensor::Tensor;

use crate::adam::{AdamParams, AdamState};
use crate::host::device::HostDevice;
use crate::optimpool::{LayerStore, OptimizerPool};
use crate::telemetry::Telemetry;

/// Configuration of the functional offloaded trainer.
#[derive(Clone, Copy, Debug)]
pub struct HostOffloadConfig {
    /// Working-window size in layers (`m`).
    pub window: usize,
    /// Concurrent CPU optimizer actors.
    pub optimizer_workers: usize,
    /// Adam hyper-parameters.
    pub adam: AdamParams,
}

impl Default for HostOffloadConfig {
    fn default() -> Self {
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 4,
            adam: AdamParams::default(),
        }
    }
}

/// The functional STRONGHOLD trainer.
pub struct HostOffloadTrainer {
    cfg: ModelConfig,
    hocfg: HostOffloadConfig,
    /// Embedding + final-LN shell; its `blocks` vector is empty — block
    /// parameters live in the store and are materialized on demand.
    shell: Transformer,
    store: Arc<LayerStore>,
    pool: OptimizerPool,
    device: Arc<HostDevice>,
    /// Reusable device buffers (`m+1` shells, §III-E3).
    shells: Vec<Block>,
    block_bytes: u64,
    token_adam: AdamState,
    pos_adam: AdamState,
    lnf_g_adam: AdamState,
    lnf_b_adam: AdamState,
    tel: Telemetry,
}

impl HostOffloadTrainer {
    /// Builds the model deterministically from `seed` and splits it into the
    /// resident shell and the offloaded layer store (no telemetry).
    pub fn new(cfg: ModelConfig, seed: u64, hocfg: HostOffloadConfig) -> Self {
        HostOffloadTrainer::with_telemetry(cfg, seed, hocfg, Telemetry::disabled())
    }

    /// [`HostOffloadTrainer::new`] wired into `tel`: prefetch issue/complete
    /// counters, shell-wait (window stall) latency, arena occupancy,
    /// optimizer-worker metrics, and wall-clock spans on the `h2d-copy` /
    /// `compute` / `d2h-copy` tracks.
    pub fn with_telemetry(
        cfg: ModelConfig,
        seed: u64,
        hocfg: HostOffloadConfig,
        tel: Telemetry,
    ) -> Self {
        let mut shell = Transformer::new(cfg, seed);
        let blocks = std::mem::take(&mut shell.blocks);
        assert!(
            !blocks.is_empty(),
            "offloaded trainer needs at least one block"
        );
        let flats: Vec<Vec<f32>> = blocks.iter().map(|b| b.flatten_params()).collect();
        let block_bytes = (blocks[0].param_count() * 4) as u64;
        let store = LayerStore::new(flats);
        let pool = OptimizerPool::with_telemetry(
            Arc::clone(&store),
            hocfg.adam,
            hocfg.optimizer_workers.max(1),
            &tel,
        );
        let m = hocfg.window.clamp(1, cfg.layers);
        // m+1 shells: the window plus the incoming-layer buffer (term s^j
        // of constraint (1c)).
        let mut shells: Vec<Block> = blocks.into_iter().take(m + 1).collect();
        while shells.len() < m + 1 {
            shells.push(shells[0].clone());
        }
        let device = Arc::new(HostDevice::with_telemetry(
            (m as u64 + 1) * block_bytes,
            &tel,
        ));
        let token_adam = AdamState::new(shell.embedding.token.numel());
        let pos_adam = AdamState::new(shell.embedding.position.numel());
        let lnf_g_adam = AdamState::new(shell.lnf_g.numel());
        let lnf_b_adam = AdamState::new(shell.lnf_b.numel());
        HostOffloadTrainer {
            cfg,
            hocfg,
            shell,
            store,
            pool,
            device,
            shells,
            block_bytes,
            token_adam,
            pos_adam,
            lnf_g_adam,
            lnf_b_adam,
            tel,
        }
    }

    /// The working-window size in force.
    pub fn window(&self) -> usize {
        self.shells.len() - 1
    }

    /// The telemetry handle this trainer records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Device traffic/occupancy counters.
    pub fn device(&self) -> &HostDevice {
        &self.device
    }

    /// Optimizer updates applied so far.
    pub fn optimizer_updates(&self) -> usize {
        self.pool.updates_applied()
    }

    /// Flat parameters of block `i` (reads through the store, waiting for
    /// pending updates — used by the equivalence tests).
    pub fn block_params(&self, i: usize) -> Vec<f32> {
        self.store.read_params(i)
    }

    /// One training step over a batch; returns the mean loss.
    pub fn train_step(&mut self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        assert!(!batch.is_empty());
        let nb = self.cfg.layers;
        let m = self.window();
        let b = batch.len();
        let scale = 1.0 / b as f32;

        let mut step_block_grads: Vec<BlockGrads> =
            (0..nb).map(|_| self.shells[0].zero_grads()).collect();

        let c_grad_off = self.tel.counter("offload.grads");
        let (fp_tx, fp_rx) = bounded::<(usize, Block)>(m);
        let (bp_tx, bp_rx) = bounded::<(usize, Block)>(m);
        let (free_tx, free_rx) = bounded::<Block>(m + 2);
        for sh in self.shells.drain(..) {
            free_tx.send(sh).expect("seed free shells");
        }

        let loss = std::thread::scope(|scope| {
            // ---- prefetcher (H2D copy engine) ----
            let store = Arc::clone(&self.store);
            let device = Arc::clone(&self.device);
            let bb = self.block_bytes;
            let free_rx_pf = free_rx.clone();
            let tel_pf = self.tel.clone();
            scope.spawn(move || {
                let c_issued = tel_pf.counter("prefetch.issued");
                // FP-order prefetch: each layer enters the window exactly
                // once per iteration, so `prefetch.completed` grows by
                // `layers` per step regardless of the window size.
                let c_done = tel_pf.counter("prefetch.completed");
                // BP-order re-entries of layers that slid out during FP.
                let c_refetch = tel_pf.counter("prefetch.refetched");
                // Time spent waiting for a free window slot — the host
                // analogue of the simulator's window-stall events.
                let h_wait = tel_pf.histogram("prefetch.shell_wait_ns");
                let fetch = |i: usize, refetch: bool| -> Option<(usize, Block)> {
                    c_issued.incr();
                    let t0 = tel_pf.now_nanos();
                    let mut shell = free_rx_pf.recv().ok()?;
                    h_wait.record(tel_pf.now_nanos().saturating_sub(t0));
                    let name = if refetch {
                        format!("h2d' L{i}")
                    } else {
                        format!("h2d L{i}")
                    };
                    let span = tel_pf.span("h2d-copy", name);
                    // Blocks if iteration k-1's update of layer i is pending.
                    let flat = store.read_params(i);
                    device.alloc(bb);
                    device.count_h2d((flat.len() * 4) as u64);
                    shell.load_flat_params(&flat);
                    span.end();
                    if refetch {
                        c_refetch.incr()
                    } else {
                        c_done.incr()
                    }
                    Some((i, shell))
                };
                for i in 0..nb {
                    let Some(item) = fetch(i, false) else { return };
                    if fp_tx.send(item).is_err() {
                        return;
                    }
                }
                drop(fp_tx);
                for i in (0..nb.saturating_sub(m)).rev() {
                    let Some(item) = fetch(i, true) else { return };
                    if bp_tx.send(item).is_err() {
                        return;
                    }
                }
            });

            // ---- compute ("GPU") ----
            // FP, batch-major, keeping each block's input as its checkpoint.
            let mut x: Vec<Tensor> = batch.iter().map(|(t, _)| self.shell.embed(t)).collect();
            let mut inputs: Vec<Vec<Tensor>> = Vec::with_capacity(nb);
            let mut kept: Vec<(usize, Block)> = Vec::new();
            for i in 0..nb {
                let (gi, block) = fp_rx.recv().expect("fp prefetch");
                assert_eq!(gi, i, "fp prefetch order");
                inputs.push(x.clone());
                let span = self.tel.span("compute", format!("fp L{i}"));
                x = x.iter().map(|xs| block.forward_no_cache(xs)).collect();
                span.end();
                if i + m >= nb {
                    kept.push((i, block)); // stays resident for BP (Fig. 3)
                } else {
                    self.device.free(self.block_bytes);
                    free_tx.send(block).expect("return shell");
                }
            }

            // Head: loss + initial gradient, per-sample scratches collect the
            // tied-LM-head and final-LN gradients.
            let mut scratches: Vec<_> = (0..b).map(|_| self.shell.zero_grads()).collect();
            let mut dy: Vec<Tensor> = Vec::with_capacity(b);
            let mut loss_sum = 0.0f32;
            for (s, (_, targets)) in batch.iter().enumerate() {
                let (l, dx, cache) = self.shell.head_forward_loss(&x[s], targets);
                loss_sum += l;
                self.shell.head_backward(&cache, &mut scratches[s]);
                dy.push(dx);
            }

            // BP: recompute-from-checkpoint, offload gradients as each layer
            // finishes, dispatch its optimizer actor immediately.
            for i in (0..nb).rev() {
                let block = match kept.pop() {
                    Some((k, blk)) => {
                        assert_eq!(k, i, "kept layer order");
                        blk
                    }
                    None => {
                        let (gi, blk) = bp_rx.recv().expect("bp prefetch");
                        assert_eq!(gi, i, "bp prefetch order");
                        blk
                    }
                };
                let span = self.tel.span("compute", format!("bp L{i}"));
                for s in 0..b {
                    let mut sample_grads = block.zero_grads();
                    let (_, cache) = block.forward(&inputs[i][s]); // recompute
                    let dxs = block.backward(&dy[s], &inputs[i][s], &cache, &mut sample_grads);
                    dy[s] = dxs;
                    step_block_grads[i].accumulate_scaled(&sample_grads, scale);
                }
                span.end();
                let off_span = self.tel.span("d2h-copy", format!("d2h L{i}"));
                let flat = step_block_grads[i].flatten();
                self.device.count_d2h((flat.len() * 4) as u64);
                off_span.end();
                c_grad_off.incr();
                self.store.mark_pending(i);
                self.pool.submit(i, flat);
                self.device.free(self.block_bytes);
                free_tx.send(block).expect("return shell");
            }

            // Embedding backward (scatter-add) per sample, then fold the
            // resident gradients in sample order — the same op sequence as
            // the reference trainer.
            for (s, (tokens, _)) in batch.iter().enumerate() {
                self.shell.embed_backward(&dy[s], tokens, &mut scratches[s]);
            }
            let mut resident = self.shell.zero_grads();
            for scratch in &scratches {
                resident.accumulate_scaled(scratch, scale);
            }

            // Resident-group Adam ("GPU optimizer" for the pinned layers),
            // fixed order: token, position, lnf gain, lnf bias.
            let hp = self.hocfg.adam;
            self.token_adam.step(
                self.shell.embedding.token.data_mut(),
                resident.embedding.token.data(),
                &hp,
            );
            self.pos_adam.step(
                self.shell.embedding.position.data_mut(),
                resident.embedding.position.data(),
                &hp,
            );
            self.lnf_g_adam
                .step(self.shell.lnf_g.data_mut(), resident.lnf_g.data(), &hp);
            self.lnf_b_adam
                .step(self.shell.lnf_b.data_mut(), resident.lnf_b.data(), &hp);

            loss_sum / b as f32
        });

        // Reclaim the device shells for the next step.
        while let Ok(sh) = free_rx.try_recv() {
            self.shells.push(sh);
        }
        assert_eq!(self.shells.len(), m + 1, "shell leak");
        // Publish cumulative GEMM kernel throughput (read-only bridge, so
        // it cannot perturb the step it reports on).
        crate::telemetry::record_kernel_stats(&self.tel);
        loss
    }

    /// Mean loss over a batch without updating, streaming layers through a
    /// single device slot (FP-only inference, §VI-D3).
    pub fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.pool.flush();
        let mut slot = self.shells[0].clone();
        let mut x: Vec<Tensor> = batch.iter().map(|(t, _)| self.shell.embed(t)).collect();
        for i in 0..self.cfg.layers {
            slot.load_flat_params(&self.store.read_params(i));
            x = x.iter().map(|xs| slot.forward_no_cache(xs)).collect();
        }
        let mut sum = 0.0f32;
        for (s, (_, targets)) in batch.iter().enumerate() {
            let (l, _, _) = self.shell.head_forward_loss(&x[s], targets);
            sum += l;
        }
        sum / batch.len() as f32
    }

    /// Per-layer hidden states of the teacher for knowledge distillation
    /// (§VI-D3), computed FP-only through the window.
    pub fn hidden_states(&self, tokens: &[u32]) -> Vec<Tensor> {
        self.pool.flush();
        let mut slot = self.shells[0].clone();
        let mut states = Vec::with_capacity(self.cfg.layers + 1);
        let mut x = self.shell.embed(tokens);
        states.push(x.clone());
        for i in 0..self.cfg.layers {
            slot.load_flat_params(&self.store.read_params(i));
            x = slot.forward_no_cache(&x);
            states.push(x.clone());
        }
        states
    }

    /// Blocks until every in-flight optimizer update has been applied.
    pub fn flush(&self) {
        self.pool.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::tiny;
    use stronghold_model::data::SyntheticCorpus;

    fn batch(cfg: &ModelConfig, seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
        SyntheticCorpus::new(cfg.vocab, seed).next_batch(cfg.batch, cfg.seq - 1)
    }

    #[test]
    fn runs_and_loss_decreases() {
        let cfg = tiny(4);
        let mut t = HostOffloadTrainer::new(
            cfg,
            21,
            HostOffloadConfig {
                window: 2,
                optimizer_workers: 3,
                adam: AdamParams {
                    lr: 5e-3,
                    ..AdamParams::default()
                },
            },
        );
        let data = batch(&cfg, 9);
        let initial = t.eval_loss(&data);
        for _ in 0..20 {
            t.train_step(&data);
        }
        let fin = t.eval_loss(&data);
        assert!(fin < initial * 0.8, "loss {initial} -> {fin}");
        assert_eq!(t.optimizer_updates(), 20 * cfg.layers);
    }

    #[test]
    fn device_footprint_bounded_by_window() {
        let cfg = tiny(6);
        let mut t = HostOffloadTrainer::new(
            cfg,
            22,
            HostOffloadConfig {
                window: 2,
                ..HostOffloadConfig::default()
            },
        );
        let data = batch(&cfg, 10);
        t.train_step(&data);
        // Peak device usage never exceeds (m+1) block slots even though the
        // model has 6 blocks.
        assert!(t.device().peak() <= t.device().capacity());
        assert_eq!(t.device().used(), 0, "all slots returned");
        // Every block travelled H2D for FP, and non-kept ones again for BP.
        assert!(t.device().h2d_bytes() > 0);
        assert!(t.device().d2h_bytes() > 0);
    }

    #[test]
    fn window_spanning_whole_model_still_works() {
        let cfg = tiny(3);
        let mut t = HostOffloadTrainer::new(
            cfg,
            23,
            HostOffloadConfig {
                window: 10, // clamped to layer count
                ..HostOffloadConfig::default()
            },
        );
        assert_eq!(t.window(), 3);
        let data = batch(&cfg, 11);
        let l1 = t.train_step(&data);
        assert!(l1.is_finite());
    }

    #[test]
    fn deterministic_across_runs_and_worker_counts() {
        let cfg = tiny(4);
        let run = |workers: usize| {
            let mut t = HostOffloadTrainer::new(
                cfg,
                24,
                HostOffloadConfig {
                    window: 2,
                    optimizer_workers: workers,
                    adam: AdamParams::default(),
                },
            );
            let data = batch(&cfg, 12);
            for _ in 0..4 {
                t.train_step(&data);
            }
            t.flush();
            (0..cfg.layers)
                .map(|i| t.block_params(i))
                .collect::<Vec<_>>()
        };
        let a = run(1);
        let b = run(4);
        let c = run(4);
        assert_eq!(a, b, "worker count must not affect results");
        assert_eq!(b, c, "repeat runs must be identical");
    }

    #[test]
    fn hidden_states_for_distillation() {
        let cfg = tiny(3);
        let t = HostOffloadTrainer::new(cfg, 25, HostOffloadConfig::default());
        let tokens: Vec<u32> = (0..10).map(|i| i % cfg.vocab as u32).collect();
        let hs = t.hidden_states(&tokens);
        assert_eq!(hs.len(), 4);
        assert!(hs.iter().all(|h| h.all_finite()));
    }
}
