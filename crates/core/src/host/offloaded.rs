//! The offloaded trainer: STRONGHOLD's working-window pipeline with real
//! threads and real tensor math.
//!
//! Roles (mirroring Fig. 3):
//!
//! * **CPU store** — [`LayerStore`] holds every block's parameters and Adam
//!   state in "pinned host memory";
//! * **prefetcher thread** — the H2D copy engine: materializes layers into
//!   reusable device *shells* (the §III-E3 buffer pool) in FP order and then
//!   in BP order, blocking when no shell is free (the window bound) or when
//!   a layer's update from the previous iteration is still pending;
//! * **compute thread** — runs FP/BP batch-major with activation
//!   checkpointing, keeps the last `m` layers resident across the FP→BP
//!   turn, and streams gradients off-device as each layer's backward ends;
//! * **optimizer pool** — [`OptimizerPool`] actors apply Adam concurrently
//!   with the next step's forward work (§III-E1).
//!
//! The pipeline is constructed so its floating-point operation sequence is
//! *identical* to [`HostResidentTrainer`](crate::host::resident::HostResidentTrainer)'s
//! — the equivalence tests assert bit-equal parameters after training. Step
//! policy (clipping, LR schedule, optimizer dispatch order, checkpointing)
//! lives in the shared [`Engine`]; this module is only the
//! [`WindowedBackend`] mechanism plus a thin facade.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use crossbeam_channel::bounded;
use stronghold_collective::order::{fold_with, tree_sum, FoldPlan};
use stronghold_model::block::{Block, BlockGrads};
use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::{Transformer, TransformerGrads};
use stronghold_tensor::{scratch, PackedHalf, Precision, Tensor};

use crate::adam::{AdamParams, AdamState};
use crate::clip::GlobalNorm;
use crate::error::RuntimeError;
use crate::hooks::{HookCtx, HookPoint, HookRegistry};
use crate::host::autotune::{AutotuneConfig, AutotuneController, StallSignals, TuneLimits, Tuning};
use crate::host::device::HostDevice;
use crate::host::engine::{
    Engine, EngineOptions, GradSink, ParamBackend, ResidentParamsMut, StepPlan, StepWorkspace,
    TrainingState,
};
use crate::optimpool::{LayerStore, OptimizerPool};
use crate::schedule::LrSchedule;
use crate::telemetry::Telemetry;
use crate::tier::{SpillPolicy, TierPlan};

/// Configuration of the functional offloaded trainer.
#[derive(Clone, Copy, Debug)]
pub struct HostOffloadConfig {
    /// Working-window size in layers (`m`).
    pub window: usize,
    /// Concurrent CPU optimizer actors.
    pub optimizer_workers: usize,
    /// Dedicated gradient-offload (D2H copy engine) threads. With `0` the
    /// flatten/copy/accounting runs inline on the compute thread between
    /// layer backwards (the pre-pipeline behavior); with `≥ 1` layer `i`'s
    /// offload overlaps layer `i−1`'s backward. Results are bit-identical
    /// either way — only *where* the flatten runs changes.
    pub offload_workers: usize,
    /// Worker threads for the per-sample forward / recompute-backward
    /// fan-out inside one layer. `1` keeps compute single-threaded (and the
    /// steady-state step loop allocation-free: fresh worker threads start
    /// with empty scratch pools); higher values trade allocations for
    /// batch parallelism. The sample-order gradient fold keeps results
    /// bit-identical for every value.
    pub compute_workers: usize,
    /// Adam hyper-parameters.
    pub adam: AdamParams,
    /// Per-step learning-rate schedule (None → constant `adam.lr`).
    pub schedule: Option<LrSchedule>,
    /// Global gradient-norm clip threshold (None → no clipping).
    pub clip_norm: Option<f32>,
    /// Dispatch each layer's Adam update as soon as its gradient lands
    /// (§III-E1 BP/optimizer overlap). Only takes effect while `clip_norm`
    /// is `None`; see [`EngineOptions::streaming_dispatch`].
    pub streaming_dispatch: bool,
    /// Closed-loop autotuning of the window and worker counts (None →
    /// static configuration). The `window` / `*_workers` fields above
    /// become the controller's starting point; see
    /// [`crate::host::autotune`].
    pub autotune: Option<AutotuneConfig>,
    /// Device-residency / transfer precision. With `Bf16`/`F16` the
    /// prefetcher streams half-width parameters H2D and the offload engine
    /// streams half-width gradients D2H (`device.h2d_bytes`/`d2h_bytes`
    /// exactly halved), while CPU master weights and Adam moments stay FP32
    /// in the [`LayerStore`]/[`OptimizerPool`]. Device shells hold the
    /// round-through-half parameter grid, so block slots cost
    /// `param_count · 2` bytes and a fixed [`Self::device_capacity`] admits
    /// a window twice as deep. `F32` (the default) keeps the trainer
    /// bit-identical to the resident reference; half modes carry the
    /// bounded divergence stated in DESIGN.md.
    pub precision: Precision,
    /// Explicit device-arena byte budget. `None` (the default) sizes the
    /// arena to the configured window — `(m+1)` block slots, exactly as
    /// before. `Some(bytes)` fixes the arena capacity instead and derives
    /// the *maximum* window from it (`⌊bytes / block_bytes⌋ − 1`, clamped
    /// to the layer count): the configured `window` is clamped to that
    /// bound, [`crate::host::autotune::TuneLimits`] exposes it as
    /// `window.max`, and the capacity never changes across retuning. Since
    /// `block_bytes` scales with [`Self::precision`], a half mode doubles
    /// the window the same budget admits.
    pub device_capacity: Option<u64>,
    /// Host-RAM byte budget for the resident FP32 masters + Adam moments
    /// (12 bytes/param/layer), mirroring [`Self::device_capacity`] one tier
    /// down. `None` (the default) keeps every layer resident. `Some(bytes)`
    /// spills the cheapest layers to a file-backed swap tier (§III-G) until
    /// the resident image fits — see [`crate::tier::TierPlan`]. Spilled
    /// layers train **bit-identically**: f32 ↔ file round trips are exact,
    /// so placement never enters the math.
    pub host_capacity: Option<u64>,
    /// Which layers spill when `host_capacity` binds (or, with
    /// [`SpillPolicy::All`], unconditionally — the stress configuration).
    pub spill: SpillPolicy,
    /// Async spill/fill I/O threads for the file tier (clamped to ≥ 1 when
    /// any layer spills; the autotuner can resize this live via the
    /// `spill_workers` knob).
    pub spill_workers: usize,
}

impl Default for HostOffloadConfig {
    fn default() -> Self {
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 4,
            offload_workers: 1,
            compute_workers: 1,
            adam: AdamParams::default(),
            schedule: None,
            clip_norm: None,
            streaming_dispatch: true,
            autotune: None,
            precision: Precision::F32,
            device_capacity: None,
            host_capacity: None,
            spill: SpillPolicy::CostAware,
            spill_workers: 1,
        }
    }
}

impl HostOffloadConfig {
    fn engine_options(&self) -> EngineOptions {
        EngineOptions {
            adam: self.adam,
            schedule: self.schedule,
            clip_norm: self.clip_norm,
            streaming_dispatch: self.streaming_dispatch,
            autotune: self.autotune,
            precision: self.precision,
        }
    }
}

/// Always-on cumulative stall clocks feeding the autotuner. These are
/// measured with `std::time::Instant` (not the telemetry clock, which reads
/// zero when telemetry is disabled) so the controller works in exactly the
/// configurations the benches time. Reading a clock never touches gradient
/// data, so the measurements cannot perturb training.
#[derive(Debug, Default)]
struct PipeStats {
    /// Compute-thread wait for a prefetched layer (window too small).
    fetch_wait_ns: AtomicU64,
    /// Prefetcher wait for a free shell (prefetch running ahead).
    shell_wait_ns: AtomicU64,
    /// Gradient queue wait before a D2H worker picked the job up.
    d2h_wait_ns: AtomicU64,
}

/// Cached FP-only streaming state for `eval_loss` / `hidden_states` /
/// `model_blob`: one device slot plus one parameter staging buffer, both
/// created on first use and reused for every subsequent call so the eval
/// and export paths allocate nothing per call in steady state.
struct EvalSlot {
    block: Option<Block>,
    stage: Vec<f32>,
    /// Half-precision round-through scratch so eval sees the same
    /// device-resident value grid training does (unused at F32).
    pack: PackedHalf,
}

/// One layer's gradient offload, handed from the compute thread to the D2H
/// engine. Carries the *owned* accumulator (returned after the copy so the
/// backend can reuse it next step) plus the workspace destinations the
/// engine will read.
struct OffloadJob<'a> {
    layer: usize,
    grads: BlockGrads,
    /// Deferred-dispatch destination: `ws.block_grads[layer]`.
    dst: &'a mut Vec<f32>,
    enqueue_ns: u64,
    /// Wall-clock enqueue time for the always-on autotuner signal (the
    /// telemetry clock above reads zero when telemetry is disabled).
    enqueue_at: std::time::Instant,
}

/// Per-sample forward fan-out across `workers` scoped threads, folding the
/// outputs back in sample order (contiguous chunks, joined in chunk order).
/// Each sample's op sequence is untouched, so the result is bit-identical
/// to the serial loop for any worker count.
fn parallel_forward(block: &Block, xs: &[Tensor], workers: usize) -> Vec<Tensor> {
    if workers <= 1 || xs.len() < 2 {
        return xs.iter().map(|x| block.forward_no_cache(x)).collect();
    }
    let chunk = xs.len().div_ceil(workers.min(xs.len()));
    std::thread::scope(|s| {
        let handles: Vec<_> = xs
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    c.iter()
                        .map(|x| block.forward_no_cache(x))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fp worker"))
            .collect()
    })
}

/// Per-sample recompute-backward fan-out: sample `s` recomputes its forward
/// from the checkpoint, runs backward into its own zeroed gradient slot
/// `slots[s]`, and swaps `dy[s]` for the propagated input gradient. The
/// caller folds the slots into the step accumulator in ascending sample
/// order, which is exactly the serial op sequence.
fn parallel_backward(
    block: &Block,
    inputs: &[Tensor],
    dy: &mut [Tensor],
    slots: &mut [BlockGrads],
    workers: usize,
) {
    let one = |x: &Tensor, d: &mut Tensor, sg: &mut BlockGrads| {
        sg.zero_();
        let (y, cache) = block.forward(x); // recompute from checkpoint
        scratch::give(y);
        let dxs = block.backward(d, x, &cache, sg);
        cache.recycle();
        scratch::give(std::mem::replace(d, dxs));
    };
    let b = inputs.len();
    if workers <= 1 || b < 2 {
        for s in 0..b {
            one(&inputs[s], &mut dy[s], &mut slots[s]);
        }
        return;
    }
    let chunk = b.div_ceil(workers.min(b));
    std::thread::scope(|s| {
        for ((ic, dc), sc) in inputs
            .chunks(chunk)
            .zip(dy.chunks_mut(chunk))
            .zip(slots.chunks_mut(chunk))
        {
            let one = &one;
            s.spawn(move || {
                for ((x, d), sg) in ic.iter().zip(dc.iter_mut()).zip(sc.iter_mut()) {
                    one(x, d, sg);
                }
            });
        }
    });
}

/// The working-window placement backend: block parameters live in a
/// [`LayerStore`], travel H2D through a bounded shell pool, and updates are
/// dispatched to concurrent optimizer actors.
pub struct WindowedBackend {
    cfg: ModelConfig,
    /// Embedding + final-LN shell; its `blocks` vector is empty — block
    /// parameters live in the store and are materialized on demand.
    shell: Transformer,
    store: Arc<LayerStore>,
    pool: OptimizerPool,
    device: Arc<HostDevice>,
    /// Reusable device buffers (`m+1` shells, §III-E3).
    shells: Vec<Block>,
    block_bytes: u64,
    tel: Telemetry,
    /// Per-layer gradient accumulators, zeroed (not reallocated) each step.
    step_grads: Vec<BlockGrads>,
    /// Per-sample BP gradient scratch, zeroed per sample in the inner loop.
    sample_grads: BlockGrads,
    /// Per-sample head/embedding scratches (grown to the largest batch seen).
    head_scratches: Vec<TransformerGrads>,
    /// Per-sample BP gradient slots for the batch-parallel fan-out (grown to
    /// the largest batch seen; empty while `compute_workers == 1`).
    bp_slots: Vec<BlockGrads>,
    /// Canonical-tree merge schedule for every batch fan-in this step.
    fold_plan: FoldPlan,
    /// Reusable block-shaped partials for the per-layer gradient tree.
    bp_fold_slots: Vec<BlockGrads>,
    /// Reusable resident-group partials for the embedding/final-LN tree.
    resident_fold_slots: Vec<TransformerGrads>,
    /// Reusable per-sample raw loss buffer for the loss tree.
    loss_buf: Vec<f32>,
    /// Streaming-path norm partials (f64 bits), written by whichever thread
    /// delivers the reduced gradient to the optimizer.
    norm_bits: Vec<AtomicU64>,
    /// When this backend is one rank of a data-parallel group: the global
    /// batch size. Gradient scaling uses `1/global` (matching a
    /// single-replica run over the whole batch) and `forward_backward`
    /// returns the *raw* shard loss partial for the driver to combine.
    global_batch: Option<usize>,
    /// Device-residency / transfer precision (see
    /// [`HostOffloadConfig::precision`]).
    precision: Precision,
    /// Fixed arena byte budget, when configured — capacity then never
    /// follows window resizes and bounds `tune_limits().window.max`.
    capacity_budget: Option<u64>,
    /// Largest window the arena admits (layer count when unbudgeted).
    window_max: usize,
    /// Staging buffer for parameter reads on the H2D prefetch path (owned by
    /// the prefetcher thread for the duration of a step).
    prefetch_stage: Vec<f32>,
    /// Half-precision packing buffer for the prefetcher's H2D path (owned by
    /// the prefetcher thread for the duration of a step; empty at F32).
    prefetch_pack: PackedHalf,
    /// Recycled half-precision packing buffers for the D2H offload workers
    /// (scoped threads are fresh each step, so reuse lives here).
    pack_pool: Mutex<Vec<PackedHalf>>,
    /// Cached FP-only slot + staging buffer for `eval_loss` /
    /// `hidden_states` / `model_blob`, created on first use and reused.
    eval_slot: Mutex<EvalSlot>,
    /// Gradient-offload (D2H) engine threads; see
    /// [`HostOffloadConfig::offload_workers`].
    offload_workers: usize,
    /// Batch-parallel compute fan-out; see
    /// [`HostOffloadConfig::compute_workers`].
    compute_workers: usize,
    /// Cumulative pipeline stall clocks (autotuner inputs).
    stats: PipeStats,
    /// Per-layer host-tier placement (all-RAM unless `host_capacity` /
    /// `spill` demand a file tier).
    tier_plan: TierPlan,
}

impl WindowedBackend {
    /// Splits an existing model into the resident shell and the offloaded
    /// layer store.
    pub(crate) fn from_model(
        model: Transformer,
        hocfg: &HostOffloadConfig,
        tel: Telemetry,
    ) -> Self {
        let cfg = model.cfg;
        let mut shell = model;
        let blocks = std::mem::take(&mut shell.blocks);
        assert!(
            !blocks.is_empty(),
            "offloaded trainer needs at least one block"
        );
        let flats: Vec<Vec<f32>> = blocks.iter().map(|b| b.flatten_params()).collect();
        let precision = hocfg.precision;
        // A device block slot holds the layer at transfer precision — half
        // modes halve it, which is what doubles the window a fixed arena
        // budget admits.
        let block_bytes = blocks[0].param_count() as u64 * precision.param_bytes();
        // An explicit arena budget bounds the window at the deepest m whose
        // (m+1) slots fit; otherwise the window is free and the arena is
        // sized to it below.
        let window_max = match hocfg.device_capacity {
            Some(cap) => (((cap / block_bytes).saturating_sub(1)) as usize).clamp(1, cfg.layers),
            None => cfg.layers,
        };
        let m = hocfg.window.clamp(1, window_max);
        // Host-tier placement: deterministic, derived from the RAM budget
        // and the (known) layer schedule. The store pages `Tier::File`
        // layers through the async spill engine; with nothing spilled it
        // degenerates to the classic resident store.
        let tier_plan = TierPlan::plan(
            cfg.layers,
            blocks[0].param_count(),
            m,
            hocfg.host_capacity,
            hocfg.spill,
        );
        let store = LayerStore::tiered(flats, &tier_plan, hocfg.spill_workers.max(1), &tel)
            .expect("create spill tier swap file");
        let pool = OptimizerPool::with_telemetry(
            Arc::clone(&store),
            hocfg.adam,
            hocfg.optimizer_workers.max(1),
            &tel,
        );
        // m+1 shells: the window plus the incoming-layer buffer (term s^j
        // of constraint (1c)).
        let mut shells: Vec<Block> = blocks.into_iter().take(m + 1).collect();
        while shells.len() < m + 1 {
            shells.push(shells[0].clone());
        }
        let capacity = hocfg
            .device_capacity
            .unwrap_or((m as u64 + 1) * block_bytes);
        let device = Arc::new(HostDevice::with_telemetry(capacity, &tel));
        let step_grads = (0..cfg.layers).map(|_| shells[0].zero_grads()).collect();
        let sample_grads = shells[0].zero_grads();
        WindowedBackend {
            cfg,
            shell,
            store,
            pool,
            device,
            shells,
            block_bytes,
            tel,
            step_grads,
            sample_grads,
            head_scratches: Vec::new(),
            bp_slots: Vec::new(),
            fold_plan: FoldPlan::default(),
            bp_fold_slots: Vec::new(),
            resident_fold_slots: Vec::new(),
            loss_buf: Vec::new(),
            norm_bits: (0..cfg.layers).map(|_| AtomicU64::new(0)).collect(),
            global_batch: None,
            precision,
            capacity_budget: hocfg.device_capacity,
            window_max,
            prefetch_stage: Vec::new(),
            prefetch_pack: PackedHalf::new(precision),
            pack_pool: Mutex::new(Vec::new()),
            eval_slot: Mutex::new(EvalSlot {
                block: None,
                stage: Vec::new(),
                pack: PackedHalf::new(precision),
            }),
            offload_workers: hocfg.offload_workers,
            compute_workers: hocfg.compute_workers.max(1),
            stats: PipeStats::default(),
            tier_plan,
        }
    }

    /// The active host-tier placement plan.
    pub fn tier_plan(&self) -> &TierPlan {
        &self.tier_plan
    }

    /// How many layers page through the file-backed spill tier.
    pub fn spilled_layers(&self) -> usize {
        self.store.spilled_layers()
    }

    /// Streams every layer through the cached eval slot in ascending order,
    /// calling `per_layer` once per materialized layer. This is the one
    /// FP-only layer-streaming loop shared by `eval_loss`, `hidden_states`
    /// and `model_blob`; the slot block and its staging buffer persist
    /// across calls, so steady-state evaluation performs no per-call heap
    /// allocation on the parameter path.
    fn stream_eval_layers(&self, mut per_layer: impl FnMut(&Block, usize)) {
        let mut guard = self.eval_slot.lock().expect("eval slot");
        let EvalSlot { block, stage, pack } = &mut *guard;
        let slot = block.get_or_insert_with(|| self.shells[0].clone());
        for i in 0..self.cfg.layers {
            self.store.read_params_into(i, stage);
            // Evaluate on the same device-resident value grid training
            // computes on (no-op at F32).
            pack.round_through(stage);
            slot.load_flat_params(stage);
            per_layer(slot, i);
        }
    }

    /// Arena bytes a window of `m` layers occupies: `(m+1)` block slots at
    /// transfer precision — the `gpu_usage` curve to feed
    /// [`crate::analytic::solve_window`] so its `m_mem_max` reflects this
    /// backend's actual (precision-scaled) footprint.
    pub fn arena_usage(&self, m: usize) -> u64 {
        (m as u64 + 1) * self.block_bytes
    }

    /// The device-residency / transfer precision in force.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    pub(crate) fn window(&self) -> usize {
        self.shells.len() - 1
    }

    /// Flat gradient elements of one transformer block (every block has the
    /// same shape) — sizes the data-parallel gradient buckets.
    pub(crate) fn block_elems(&self) -> usize {
        self.shells[0].param_count()
    }

    /// Marks this backend as rank of a data-parallel group over a global
    /// batch of `n` samples (see the `global_batch` field).
    pub(crate) fn set_global_batch(&mut self, n: usize) {
        self.global_batch = Some(n);
    }

    /// Flat parameters of block `i`, read through the store (waits for any
    /// pending update of that layer).
    pub(crate) fn read_block_params(&self, i: usize) -> Vec<f32> {
        self.store.read_params(i)
    }

    /// Total gradient elements one replica contributes per step: every
    /// block plus the resident groups — the `E` of `V_dp = w·(w−1)·E`.
    pub(crate) fn grad_elements(&self) -> u64 {
        let block: u64 = self.shells[0].param_count() as u64;
        let resident = self.shell.embedding.token.numel()
            + self.shell.embedding.position.numel()
            + self.shell.lnf_g.numel()
            + self.shell.lnf_b.numel();
        self.store.len() as u64 * block + resident as u64
    }

    /// The concurrent optimizer pool (for flush/updates accounting).
    pub(crate) fn pool(&self) -> &OptimizerPool {
        &self.pool
    }
}

impl ParamBackend for WindowedBackend {
    fn config(&self) -> ModelConfig {
        self.cfg
    }

    fn num_blocks(&self) -> usize {
        self.store.len()
    }

    fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    fn new_resident_grads(&self) -> TransformerGrads {
        self.shell.zero_grads()
    }

    /// One forward/backward pass with the working-window pipeline; fills
    /// `ws.block_grads` (flattened on the D2H path as each layer's backward
    /// ends) and `ws.resident_grads` — or, under [`StepPlan::streaming`],
    /// submits each layer's optimizer update straight from the D2H engine.
    ///
    /// Three-way overlap: the prefetcher thread runs H2D copies ahead of
    /// compute, the compute thread runs FP/BP (optionally fanning the batch
    /// across `compute_workers`), and the offload engine threads flatten and
    /// account each finished layer's gradient off the compute thread's
    /// critical path, so layer `i`'s D2H overlaps layer `i−1`'s backward.
    ///
    /// Steady-state the loop performs no per-element heap allocation: the
    /// gradient accumulators, head scratches, and the H2D/D2H staging
    /// buffers are backend/workspace fields that are zeroed/overwritten
    /// each step, and all activation tensors cycle through the thread-local
    /// scratch pool. Zeroing a reused buffer and allocating a fresh zeroed
    /// one are the same FP op sequence, so bit-equality with the resident
    /// trainer is preserved.
    fn forward_backward(
        &mut self,
        batch: &[(Vec<u32>, Vec<u32>)],
        ws: &mut StepWorkspace,
        hooks: &mut HookRegistry,
        iteration: u64,
        plan: &StepPlan,
        sink: &dyn GradSink,
    ) -> f32 {
        assert!(!batch.is_empty());
        let nb = self.cfg.layers;
        let m = self.window();
        let b = batch.len();
        let ow = self.offload_workers;
        let cw = self.compute_workers;
        // A data-parallel rank scales by the *global* batch — the same f32
        // a single-replica run over the whole batch would use.
        let scale = 1.0 / self.global_batch.unwrap_or(b) as f32;
        let ctx = |layer: usize| HookCtx {
            layer,
            iteration,
            micro_batch: 0,
        };

        for g in self.step_grads.iter_mut() {
            g.zero_();
        }
        while self.head_scratches.len() < b {
            self.head_scratches.push(self.shell.zero_grads());
        }
        for sg in self.head_scratches.iter_mut().take(b) {
            sg.zero_();
        }
        if cw > 1 {
            while self.bp_slots.len() < b {
                self.bp_slots.push(self.shells[0].zero_grads());
            }
        }
        // Canonical-tree fan-in state (see `stronghold_collective::order`):
        // one merge schedule for the batch, block-shaped and resident-shaped
        // partial slots, and the per-sample raw loss buffer — all grown once
        // and reused, preserving the zero-allocation step contract.
        self.fold_plan.set_len(b);
        while self.bp_fold_slots.len() < self.fold_plan.depth() {
            self.bp_fold_slots.push(self.shells[0].zero_grads());
        }
        while self.resident_fold_slots.len() < self.fold_plan.depth() {
            self.resident_fold_slots.push(self.shell.zero_grads());
        }
        self.loss_buf.clear();
        self.loss_buf.resize(b, 0.0);
        ws.streamed = plan.streaming;
        let want_norm = plan.streaming && self.tel.is_enabled();
        if want_norm {
            for bits in &self.norm_bits {
                bits.store(0, Ordering::Relaxed);
            }
        }
        let StepWorkspace {
            block_grads,
            resident_grads,
            norm_partials,
            ..
        } = ws;
        // Offload destinations, popped alongside `step_grads` in BP order.
        let mut dsts: Vec<&mut Vec<f32>> = block_grads.iter_mut().collect();

        let (fp_tx, fp_rx) = bounded::<(usize, Block)>(m);
        let (bp_tx, bp_rx) = bounded::<(usize, Block)>(m);
        let (free_tx, free_rx) = bounded::<Block>(m + 2);
        // Offload queue: bounded so a stalled D2H engine back-pressures
        // compute instead of buffering the whole model.
        let (off_tx, off_rx) = bounded(m + 1);
        // Every layer's accumulator comes back exactly once; capacity `nb`
        // means returning one can never block an offload worker.
        let (done_tx, done_rx) = bounded(nb);
        for sh in self.shells.drain(..) {
            free_tx.send(sh).expect("seed free shells");
        }

        // ---- gradient offload (D2H copy engine) ----
        // Shared by the dedicated engine threads (or called inline when
        // `offload_workers == 0`): flatten the finished layer's gradient,
        // account the D2H traffic, and either stream the optimizer update
        // immediately (clip off) or park the flat gradient for the engine's
        // deferred dispatch. Runs concurrently with the next layer's
        // backward on the compute thread.
        let hp = plan.hp;
        let streaming = plan.streaming;
        let pool = &self.pool;
        let device_off = Arc::clone(&self.device);
        let tel_off = self.tel.clone();
        let wait_h = self.tel.histogram("d2h.queue_wait_ns");
        let c_grad_off = self.tel.counter("offload.grads");
        // Final-gradient delivery: invoked by the sink (immediately for
        // local training; after the replica rendezvous for data-parallel)
        // with the gradient the optimizer must apply. The norm partial is
        // taken *here* so it reflects the reduced gradient — the same value
        // the engine would compute on the deferred path.
        let norm_bits = &self.norm_bits;
        let store_dl = Arc::clone(&self.store);
        let deliver = move |layer: usize, buf: Vec<f32>| {
            if want_norm {
                norm_bits[layer].store(GlobalNorm::layer_sum_sq(&buf).to_bits(), Ordering::Relaxed);
            }
            store_dl.mark_pending(layer);
            pool.submit_owned(layer, buf, hp);
        };
        let stats = &self.stats;
        // Half-precision D2H: the flat gradient is rounded through the
        // packed transfer format (the payload that would cross the link —
        // `2` bytes per element) and the optimizer ingests the rounded f32
        // values against its FP32 masters ("convert-on-ingest"). Packing
        // buffers recycle through the backend pool because the offload
        // workers are fresh scoped threads each step. Returns the bytes
        // moved.
        let precision = self.precision;
        let pack_pool = &self.pack_pool;
        let round_half = move |buf: &mut [f32]| -> u64 {
            let mut pack = pack_pool
                .lock()
                .expect("pack pool")
                .pop()
                .unwrap_or_else(|| PackedHalf::new(precision));
            pack.round_through(buf);
            let n = pack.nbytes();
            pack_pool.lock().expect("pack pool").push(pack);
            n
        };
        let offload = move |job: OffloadJob<'_>| -> (usize, BlockGrads) {
            let OffloadJob {
                layer,
                grads,
                dst,
                enqueue_ns,
                enqueue_at,
            } = job;
            wait_h.record(tel_off.now_nanos().saturating_sub(enqueue_ns));
            stats
                .d2h_wait_ns
                .fetch_add(enqueue_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let span = tel_off.span("d2h-copy", format!("d2h L{layer}"));
            device_off.begin_d2h();
            let bytes;
            if streaming {
                // Flatten straight into a recycled pool buffer: the D2H
                // copy *is* the optimizer hand-off, no second copy. The
                // sink decides when the buffer reaches `deliver` (a
                // reducing sink may park it in a bucket first).
                let mut buf = pool.recycled_buffer();
                grads.flatten_into(&mut buf);
                bytes = if precision.is_half() {
                    round_half(&mut buf)
                } else {
                    (buf.len() * 4) as u64
                };
                sink.layer_ready(layer, buf, &deliver);
            } else {
                grads.flatten_into(dst);
                bytes = if precision.is_half() {
                    round_half(dst)
                } else {
                    (dst.len() * 4) as u64
                };
            }
            device_off.end_d2h(bytes);
            span.end();
            c_grad_off.incr();
            (layer, grads)
        };

        let prefetch_stage = &mut self.prefetch_stage;
        let prefetch_pack = &mut self.prefetch_pack;
        let loss = std::thread::scope(|scope| {
            // ---- prefetcher (H2D copy engine) ----
            let store = Arc::clone(&self.store);
            let device = Arc::clone(&self.device);
            let bb = self.block_bytes;
            let free_rx_pf = free_rx.clone();
            let tel_pf = self.tel.clone();
            scope.spawn(move || {
                let stage = prefetch_stage;
                let pack = prefetch_pack;
                let c_issued = tel_pf.counter("prefetch.issued");
                // FP-order prefetch: each layer enters the window exactly
                // once per iteration, so `prefetch.completed` grows by
                // `layers` per step regardless of the window size.
                let c_done = tel_pf.counter("prefetch.completed");
                // BP-order re-entries of layers that slid out during FP.
                let c_refetch = tel_pf.counter("prefetch.refetched");
                // Time spent waiting for a free window slot — the host
                // analogue of the simulator's window-stall events.
                let h_wait = tel_pf.histogram("prefetch.shell_wait_ns");
                let mut fetch = |i: usize, refetch: bool| -> Option<(usize, Block)> {
                    c_issued.incr();
                    let t0 = tel_pf.now_nanos();
                    let wall = std::time::Instant::now();
                    let mut shell = free_rx_pf.recv().ok()?;
                    stats
                        .shell_wait_ns
                        .fetch_add(wall.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    h_wait.record(tel_pf.now_nanos().saturating_sub(t0));
                    let name = if refetch {
                        format!("h2d' L{i}")
                    } else {
                        format!("h2d L{i}")
                    };
                    let span = tel_pf.span("h2d-copy", name);
                    device.begin_h2d();
                    // Blocks if iteration k-1's update of layer i is pending.
                    store.read_params_into(i, stage);
                    device.alloc(bb);
                    // Half-precision H2D: the FP32 master is packed into the
                    // half-width transfer payload (the bytes that cross the
                    // link) and the shell receives the round-through values —
                    // the device computes on the half grid while the store
                    // keeps full masters. Round-through is idempotent, so a
                    // BP refetch of an unchanged layer reloads identical bits.
                    let h2d_bytes = if precision.is_half() {
                        pack.round_through(stage);
                        pack.nbytes()
                    } else {
                        (stage.len() * 4) as u64
                    };
                    shell.load_flat_params(stage);
                    device.end_h2d(h2d_bytes);
                    span.end();
                    if refetch {
                        c_refetch.incr()
                    } else {
                        c_done.incr()
                    }
                    Some((i, shell))
                };
                // Schedule-driven spill prefetch: the combined access
                // sequence (FP `0..nb`, then BP `rev(0..nb−m)`) is fully
                // known, so file-tier fills are issued `m+1` positions
                // ahead of the H2D copy — disk reads hide under compute
                // exactly like the H2D prefetch itself. `prefill` is a
                // no-op for resident layers and for layers whose update is
                // still in flight (the read falls back to a demand fill).
                let total = 2 * nb - m;
                let layer_at = |p: usize| if p < nb { p } else { 2 * nb - m - 1 - p };
                let lookahead = m + 1;
                for p in 0..lookahead.min(total) {
                    store.prefill(layer_at(p));
                }
                for i in 0..nb {
                    if i + lookahead < total {
                        store.prefill(layer_at(i + lookahead));
                    }
                    let Some(item) = fetch(i, false) else { return };
                    if fp_tx.send(item).is_err() {
                        return;
                    }
                }
                drop(fp_tx);
                for i in (0..nb.saturating_sub(m)).rev() {
                    let p = 2 * nb - m - 1 - i;
                    if p + lookahead < total {
                        store.prefill(layer_at(p + lookahead));
                    }
                    let Some(item) = fetch(i, true) else { return };
                    if bp_tx.send(item).is_err() {
                        return;
                    }
                }
            });

            // ---- offload engine threads ----
            let offload_ref = &offload;
            for _ in 0..ow {
                let off_rx = off_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    while let Ok(job) = off_rx.recv() {
                        done_tx.send(offload_ref(job)).expect("offload done");
                    }
                });
            }

            // ---- compute ("GPU") ----
            // FP, batch-major; each layer's input tensors are *moved* into
            // the checkpoint list (the block writes fresh pool tensors), so
            // no activation is ever cloned.
            let mut x: Vec<Tensor> = batch.iter().map(|(t, _)| self.shell.embed(t)).collect();
            let mut inputs: Vec<Vec<Tensor>> = Vec::with_capacity(nb);
            let mut kept: Vec<(usize, Block)> = Vec::with_capacity(m);
            for i in 0..nb {
                hooks.fire(i, HookPoint::PreForward, &ctx(i));
                let wall = std::time::Instant::now();
                let (gi, block) = fp_rx.recv().expect("fp prefetch");
                stats
                    .fetch_wait_ns
                    .fetch_add(wall.elapsed().as_nanos() as u64, Ordering::Relaxed);
                assert_eq!(gi, i, "fp prefetch order");
                let span = self.tel.span("compute", format!("fp L{i}"));
                let next = parallel_forward(&block, &x, cw);
                span.end();
                hooks.fire(i, HookPoint::PostForward, &ctx(i));
                inputs.push(std::mem::replace(&mut x, next));
                if i + m >= nb {
                    kept.push((i, block)); // stays resident for BP (Fig. 3)
                } else {
                    self.device.free(self.block_bytes);
                    free_tx.send(block).expect("return shell");
                }
            }

            // Head: loss + initial gradient, per-sample scratches collect the
            // tied-LM-head and final-LN gradients.
            let mut dy: Vec<Tensor> = Vec::with_capacity(b);
            for (s, (_, targets)) in batch.iter().enumerate() {
                let (l, dx, cache) = self.shell.head_forward_loss(&x[s], targets);
                self.loss_buf[s] = l;
                self.shell
                    .head_backward(&cache, &mut self.head_scratches[s]);
                cache.recycle();
                dy.push(dx);
            }
            for t in x {
                scratch::give(t); // head inputs are done
            }

            // BP: recompute-from-checkpoint, handing each finished layer's
            // accumulator to the offload engine so the flatten/D2H (and,
            // when streaming, the optimizer submission) overlaps the next
            // layer's backward. With clipping active the engine dispatches
            // after the step's global norm is known, as before.
            for i in (0..nb).rev() {
                let block = match kept.pop() {
                    Some((k, blk)) => {
                        assert_eq!(k, i, "kept layer order");
                        blk
                    }
                    None => {
                        let wall = std::time::Instant::now();
                        let (gi, blk) = bp_rx.recv().expect("bp prefetch");
                        stats
                            .fetch_wait_ns
                            .fetch_add(wall.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        assert_eq!(gi, i, "bp prefetch order");
                        blk
                    }
                };
                hooks.fire(i, HookPoint::PreBackward, &ctx(i));
                let span = self.tel.span("compute", format!("bp L{i}"));
                let mut sg = self.step_grads.pop().expect("step-grad accumulator");
                // Deterministic fan-in: per-sample raw gradients fold down
                // the canonical pairwise tree (leaf = scaled sample gradient
                // in a zeroed slot) — the same association the resident
                // trainer and every other fan-in in the repo use.
                if cw > 1 {
                    parallel_backward(&block, &inputs[i], &mut dy, &mut self.bp_slots[..b], cw);
                    fold_with(
                        &self.fold_plan,
                        &mut self.bp_fold_slots,
                        |s, slot| {
                            slot.zero_();
                            slot.accumulate_scaled(&self.bp_slots[s], scale);
                        },
                        |acc, part| acc.accumulate(part),
                    );
                } else {
                    fold_with(
                        &self.fold_plan,
                        &mut self.bp_fold_slots,
                        |s, slot| {
                            self.sample_grads.zero_();
                            let (y, cache) = block.forward(&inputs[i][s]); // recompute
                            scratch::give(y);
                            let dxs = block.backward(
                                &dy[s],
                                &inputs[i][s],
                                &cache,
                                &mut self.sample_grads,
                            );
                            cache.recycle();
                            scratch::give(std::mem::replace(&mut dy[s], dxs));
                            slot.zero_();
                            slot.accumulate_scaled(&self.sample_grads, scale);
                        },
                        |acc, part| acc.accumulate(part),
                    );
                }
                std::mem::swap(&mut sg, &mut self.bp_fold_slots[0]);
                for t in std::mem::take(&mut inputs[i]) {
                    scratch::give(t); // layer i's checkpoints are consumed
                }
                span.end();
                hooks.fire(i, HookPoint::PostBackward, &ctx(i));
                // Free the shell before queueing the offload: the prefetcher
                // can start the next H2D while the gradient is still in the
                // D2H engine's queue.
                self.device.free(self.block_bytes);
                free_tx.send(block).expect("return shell");
                let dst = dsts.pop().expect("offload destination");
                let job = OffloadJob {
                    layer: i,
                    grads: sg,
                    dst,
                    enqueue_ns: self.tel.now_nanos(),
                    enqueue_at: std::time::Instant::now(),
                };
                if ow == 0 {
                    done_tx.send(offload_ref(job)).expect("offload done");
                } else {
                    off_tx.send(job).expect("offload queue");
                }
            }
            // Close the offload queue: engine threads drain it and exit
            // while the embedding backward below proceeds.
            drop(off_tx);

            // Embedding backward (scatter-add) per sample, then fold the
            // resident gradients in sample order — the same op sequence as
            // the reference trainer.
            for (s, (tokens, _)) in batch.iter().enumerate() {
                self.shell
                    .embed_backward(&dy[s], tokens, &mut self.head_scratches[s]);
            }
            for t in dy {
                scratch::give(t);
            }
            // Resident groups fold down the same canonical tree.
            fold_with(
                &self.fold_plan,
                &mut self.resident_fold_slots,
                |s, slot| {
                    slot.zero_();
                    slot.accumulate_scaled(&self.head_scratches[s], scale);
                },
                |acc, part| acc.accumulate_scaled(part, 1.0),
            );
            std::mem::swap(resident_grads, &mut self.resident_fold_slots[0]);

            tree_sum(&self.loss_buf)
        });

        // Reclaim the device shells for the next step.
        while let Ok(sh) = free_rx.try_recv() {
            self.shells.push(sh);
        }
        assert_eq!(self.shells.len(), m + 1, "shell leak");
        // Reclaim the per-layer accumulators from the offload engine; they
        // complete out of order under multiple workers, so sort back into
        // ascending layer order for the next step.
        let mut returned: Vec<(usize, BlockGrads)> = Vec::with_capacity(nb);
        while let Ok(pair) = done_rx.try_recv() {
            returned.push(pair);
        }
        assert_eq!(returned.len(), nb, "offload engine lost a layer");
        returned.sort_unstable_by_key(|(l, _)| *l);
        for (_, g) in returned {
            self.step_grads.push(g);
        }
        // Streaming norm partials were recorded at delivery time (on the
        // reduced gradients); surface them to the engine's norm fold.
        if want_norm {
            for (p, bits) in norm_partials.iter_mut().zip(&self.norm_bits) {
                *p = f64::from_bits(bits.load(Ordering::Relaxed));
            }
        }
        // A data-parallel rank hands the raw shard loss partial to the
        // driver, which tree-folds the rank partials and divides once.
        match self.global_batch {
            Some(_) => loss,
            None => loss / b as f32,
        }
    }

    /// Marks the layer pending and hands the update to the actor pool; the
    /// next iteration's prefetch of this layer blocks until it is applied.
    fn dispatch_block_update(&mut self, layer: usize, grads: &[f32], hp: &AdamParams) {
        self.store.mark_pending(layer);
        self.pool.submit_with(layer, grads, *hp);
    }

    fn resident_params_mut(&mut self) -> ResidentParamsMut<'_> {
        ResidentParamsMut {
            token: self.shell.embedding.token.data_mut(),
            position: self.shell.embedding.position.data_mut(),
            lnf_g: self.shell.lnf_g.data_mut(),
            lnf_b: self.shell.lnf_b.data_mut(),
        }
    }

    /// Mean loss over a batch without updating, streaming layers through a
    /// single cached device slot (FP-only inference, §VI-D3). The slot
    /// `Block` is cloned once on first use and reused by every subsequent
    /// eval — `load_flat_params` overwrites all of it each layer.
    fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.pool.flush();
        let mut x: Vec<Tensor> = batch.iter().map(|(t, _)| self.shell.embed(t)).collect();
        self.stream_eval_layers(|slot, _| {
            let next: Vec<Tensor> = x.iter().map(|xs| slot.forward_no_cache(xs)).collect();
            for t in std::mem::replace(&mut x, next) {
                scratch::give(t);
            }
        });
        let mut losses = Vec::with_capacity(batch.len());
        for (s, (_, targets)) in batch.iter().enumerate() {
            let (l, dx, cache) = self.shell.head_forward_loss(&x[s], targets);
            scratch::give(dx);
            cache.recycle();
            losses.push(l);
        }
        for t in x {
            scratch::give(t);
        }
        tree_sum(&losses) / batch.len() as f32
    }

    /// Reassembles the full model from the shell and the layer store.
    fn model_blob(&self) -> Bytes {
        let mut full = Transformer {
            cfg: self.cfg,
            embedding: self.shell.embedding.clone(),
            blocks: Vec::with_capacity(self.store.len()),
            lnf_g: self.shell.lnf_g.clone(),
            lnf_b: self.shell.lnf_b.clone(),
        };
        // Stage through the persistent eval buffer (no per-call staging
        // allocation; the per-layer `Block` clones *are* the output).
        let stage = &mut self.eval_slot.lock().expect("eval slot").stage;
        for i in 0..self.store.len() {
            let mut blk = self.shells[0].clone();
            self.store.read_params_into(i, stage);
            blk.load_flat_params(stage);
            full.blocks.push(blk);
        }
        stronghold_model::serialize::save(&full)
    }

    fn block_adam_snapshot(&self, layer: usize) -> AdamState {
        self.store.adam_snapshot(layer)
    }

    fn flush(&self) {
        // Pool first (updates enqueue their write-backs inside
        // `apply_update`), then the spill engine — after both, every
        // pending flag is clear and the file image is current.
        self.pool.flush();
        self.store.flush_spill();
    }

    fn tune_limits(&self) -> Option<TuneLimits> {
        let spilled = self.store.spilled_layers() > 0;
        Some(TuneLimits {
            // `window_max` is the arena-admitted bound: the layer count
            // when unbudgeted, else ⌊budget/block_bytes⌋−1 — which doubles
            // under a half precision at the same budget.
            window: (1, self.window_max),
            offload_workers: (1, 8),
            compute_workers: (1, 8),
            optimizer_workers: (1, 8),
            // Without a file tier the knob is pinned at zero; with one the
            // controller may resize the I/O pool.
            spill_workers: if spilled { (1, 8) } else { (0, 0) },
        })
    }

    fn current_tuning(&self) -> Tuning {
        Tuning {
            window: self.window(),
            offload_workers: self.offload_workers,
            compute_workers: self.compute_workers,
            optimizer_workers: self.pool.workers(),
            spill_workers: self.store.spill_workers(),
        }
    }

    /// Resizes the shell pool / device arena and worker counts between
    /// steps. Shell contents are fully overwritten by each H2D, worker
    /// counts never enter the fold order, and the optimizer pool drains
    /// FIFO through retirements — so any schedule of `apply_tuning` calls
    /// at step boundaries leaves the trained parameters bit-identical.
    fn apply_tuning(&mut self, t: Tuning) {
        let m = t.window.clamp(1, self.window_max);
        if m != self.window() {
            while self.shells.len() < m + 1 {
                self.shells.push(self.shells[0].clone());
            }
            self.shells.truncate(m + 1);
            // A fixed arena budget never follows the window; otherwise the
            // arena tracks (m+1) slots exactly as before.
            if self.capacity_budget.is_none() {
                self.device.set_capacity((m as u64 + 1) * self.block_bytes);
            }
        }
        self.offload_workers = t.offload_workers;
        self.compute_workers = t.compute_workers.max(1);
        if t.optimizer_workers != self.pool.workers() {
            self.pool.set_workers(t.optimizer_workers);
        }
        if self.store.spilled_layers() > 0
            && t.spill_workers > 0
            && t.spill_workers != self.store.spill_workers()
        {
            self.store.set_spill_workers(t.spill_workers);
        }
    }

    fn stall_signals(&self) -> StallSignals {
        StallSignals {
            fetch_wait_ns: self.stats.fetch_wait_ns.load(Ordering::Relaxed),
            shell_wait_ns: self.stats.shell_wait_ns.load(Ordering::Relaxed),
            d2h_wait_ns: self.stats.d2h_wait_ns.load(Ordering::Relaxed),
            optim_backlog: self.pool.pending() as u64,
            fill_wait_ns: self.store.fill_wait_nanos(),
        }
    }
}

/// The functional STRONGHOLD trainer: a facade over the shared [`Engine`]
/// running a [`WindowedBackend`].
pub struct HostOffloadTrainer {
    engine: Engine<WindowedBackend>,
}

impl HostOffloadTrainer {
    /// Builds the model deterministically from `seed` and splits it into the
    /// resident shell and the offloaded layer store (no telemetry).
    pub fn new(cfg: ModelConfig, seed: u64, hocfg: HostOffloadConfig) -> Self {
        HostOffloadTrainer::with_telemetry(cfg, seed, hocfg, Telemetry::disabled())
    }

    /// [`HostOffloadTrainer::new`] wired into `tel`: prefetch issue/complete
    /// counters, shell-wait (window stall) latency, arena occupancy,
    /// optimizer-worker metrics, per-step `step.lr` / `step.grad_norm`
    /// gauges, and wall-clock spans on the `h2d-copy` / `compute` /
    /// `d2h-copy` tracks.
    pub fn with_telemetry(
        cfg: ModelConfig,
        seed: u64,
        hocfg: HostOffloadConfig,
        tel: Telemetry,
    ) -> Self {
        let backend = WindowedBackend::from_model(Transformer::new(cfg, seed), &hocfg, tel);
        HostOffloadTrainer {
            engine: Engine::new(backend, hocfg.engine_options()),
        }
    }

    /// The working-window size in force.
    pub fn window(&self) -> usize {
        self.engine.backend().window()
    }

    /// The device-residency / transfer precision in force.
    pub fn precision(&self) -> Precision {
        self.engine.backend().precision()
    }

    /// The backend's live-tunable knob bounds — `window.1` is the largest
    /// window the device arena admits (see
    /// [`HostOffloadConfig::device_capacity`]).
    pub fn tune_limits(&self) -> Option<TuneLimits> {
        self.engine.backend().tune_limits()
    }

    /// Arena bytes a window of `m` layers would occupy on this trainer's
    /// device — the `gpu_usage` curve for
    /// [`crate::analytic::solve_window`].
    pub fn arena_usage(&self, m: usize) -> u64 {
        self.engine.backend().arena_usage(m)
    }

    /// The live autotune controller, when [`HostOffloadConfig::autotune`]
    /// is set (its gauges mirror the knobs currently in force).
    pub fn autotune(&self) -> Option<&AutotuneController> {
        self.engine.autotune()
    }

    /// Applies a tuning directly between steps, bypassing the controller —
    /// the forced-resize path the equivalence tests drive.
    pub fn force_tuning(&mut self, t: Tuning) {
        self.engine.force_tuning(t);
    }

    /// The telemetry handle this trainer records into.
    pub fn telemetry(&self) -> &Telemetry {
        self.engine.telemetry()
    }

    /// Device traffic/occupancy counters.
    pub fn device(&self) -> &HostDevice {
        &self.engine.backend().device
    }

    /// Optimizer updates applied so far.
    pub fn optimizer_updates(&self) -> usize {
        self.engine.backend().pool.updates_applied()
    }

    /// Completed optimizer steps.
    pub fn steps(&self) -> u64 {
        self.engine.steps()
    }

    /// The hook registry; register pipeline callbacks here.
    pub fn hooks_mut(&mut self) -> &mut HookRegistry {
        self.engine.hooks_mut()
    }

    /// Total hook invocations so far.
    pub fn hook_invocations(&self) -> u64 {
        self.engine.hooks().invocations()
    }

    /// Flat parameters of block `i` (reads through the store, waiting for
    /// pending updates — used by the equivalence tests).
    pub fn block_params(&self, i: usize) -> Vec<f32> {
        self.engine.backend().store.read_params(i)
    }

    /// One training step over a batch; returns the mean loss.
    pub fn train_step(&mut self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.engine.train_step(batch)
    }

    /// Mean loss over a batch without updating (evaluation).
    pub fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.engine.eval_loss(batch)
    }

    /// Per-layer hidden states of the teacher for knowledge distillation
    /// (§VI-D3), computed FP-only through the cached eval slot.
    pub fn hidden_states(&self, tokens: &[u32]) -> Vec<Tensor> {
        let backend = self.engine.backend();
        backend.pool.flush();
        let mut states = Vec::with_capacity(backend.cfg.layers + 1);
        let mut x = backend.shell.embed(tokens);
        states.push(x.clone());
        backend.stream_eval_layers(|slot, _| {
            x = slot.forward_no_cache(&x);
            states.push(x.clone());
        });
        states
    }

    /// Blocks until every in-flight optimizer update has been applied —
    /// including, for a tiered store, the spill-tier write-backs.
    pub fn flush(&self) {
        let backend = self.engine.backend();
        backend.pool.flush();
        backend.store.flush_spill();
    }

    /// How many layers page through the file-backed spill tier (0 without a
    /// `host_capacity` budget or `SpillPolicy::All`).
    pub fn spilled_layers(&self) -> usize {
        self.engine.backend().spilled_layers()
    }

    /// The active host-tier placement plan.
    pub fn tier_plan(&self) -> &TierPlan {
        self.engine.backend().tier_plan()
    }

    /// Cumulative nanoseconds the pipeline spent blocked on file-tier
    /// fills (the autotuner's `fill_wait_ns` stall signal).
    pub fn fill_wait_nanos(&self) -> u64 {
        self.engine.backend().store.fill_wait_nanos()
    }

    /// Total swap-file traffic so far: `(bytes_read, bytes_written)`.
    pub fn spill_traffic(&self) -> (u64, u64) {
        match self.engine.backend().store.tier_store() {
            Some(t) => (t.nvme().bytes_read(), t.nvme().bytes_written()),
            None => (0, 0),
        }
    }

    /// Serializes the full training state — format version, step counter,
    /// the reassembled model, and every Adam moment (store-side and
    /// resident) — so training resumes **bit-exactly** on any backend.
    pub fn save_training_state(&self) -> Bytes {
        self.engine.save_training_state()
    }

    /// Restores a trainer from [`Self::save_training_state`] output (which
    /// may have been written by *any* backend). `cfg` guards against
    /// resuming with the wrong model shape; malformed blobs yield a typed
    /// [`RuntimeError::Checkpoint`].
    pub fn load_training_state(
        blob: Bytes,
        cfg: ModelConfig,
        hocfg: HostOffloadConfig,
    ) -> Result<Self, RuntimeError> {
        HostOffloadTrainer::load_training_state_with_telemetry(
            blob,
            cfg,
            hocfg,
            Telemetry::disabled(),
        )
    }

    /// [`HostOffloadTrainer::load_training_state`] wired into `tel`.
    pub fn load_training_state_with_telemetry(
        blob: Bytes,
        cfg: ModelConfig,
        hocfg: HostOffloadConfig,
        tel: Telemetry,
    ) -> Result<Self, RuntimeError> {
        let st = TrainingState::decode(blob)?;
        st.expect_config(&cfg)?;
        st.expect_precision(hocfg.precision)?;
        let TrainingState {
            step,
            model,
            block_adams,
            resident_adams,
            ..
        } = st;
        let backend = WindowedBackend::from_model(model, &hocfg, tel);
        for (i, adam) in block_adams.into_iter().enumerate() {
            backend.store.set_adam(i, adam);
        }
        Ok(HostOffloadTrainer {
            engine: Engine::resume(backend, hocfg.engine_options(), step, resident_adams),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::tiny;
    use stronghold_model::data::SyntheticCorpus;

    fn batch(cfg: &ModelConfig, seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
        SyntheticCorpus::new(cfg.vocab, seed).next_batch(cfg.batch, cfg.seq - 1)
    }

    #[test]
    fn runs_and_loss_decreases() {
        let cfg = tiny(4);
        let mut t = HostOffloadTrainer::new(
            cfg,
            21,
            HostOffloadConfig {
                window: 2,
                optimizer_workers: 3,
                adam: AdamParams {
                    lr: 5e-3,
                    ..AdamParams::default()
                },
                ..HostOffloadConfig::default()
            },
        );
        let data = batch(&cfg, 9);
        let initial = t.eval_loss(&data);
        for _ in 0..20 {
            t.train_step(&data);
        }
        let fin = t.eval_loss(&data);
        assert!(fin < initial * 0.8, "loss {initial} -> {fin}");
        assert_eq!(t.optimizer_updates(), 20 * cfg.layers);
    }

    #[test]
    fn device_footprint_bounded_by_window() {
        let cfg = tiny(6);
        let tel = Telemetry::enabled();
        let mut t = HostOffloadTrainer::with_telemetry(
            cfg,
            22,
            HostOffloadConfig {
                window: 2,
                ..HostOffloadConfig::default()
            },
            tel.clone(),
        );
        let data = batch(&cfg, 10);
        t.train_step(&data);
        // Exact footprint: the device holds (m+1) block slots and the
        // pipeline keeps them all busy at its peak, even though the model
        // has 6 blocks — the capacity *is* the footprint, not a loose bound.
        let block_bytes = (Transformer::new(cfg, 22).blocks[0].param_count() * 4) as u64;
        assert_eq!(
            t.device().capacity(),
            (t.window() as u64 + 1) * block_bytes,
            "device sized to (m+1) block slots"
        );
        assert_eq!(
            t.device().peak(),
            t.device().capacity(),
            "peak occupancy is exactly (m+1) * block_bytes"
        );
        assert_eq!(t.device().used(), 0, "all slots returned");
        // Every block travelled H2D for FP, and exactly the layers that
        // slid out of the window travelled again for BP.
        assert_eq!(
            tel.counter("prefetch.refetched").get(),
            (cfg.layers - t.window()) as u64,
            "refetches per step == layers - m"
        );
        assert!(t.device().h2d_bytes() > 0);
        assert!(t.device().d2h_bytes() > 0);
    }

    #[test]
    fn window_spanning_whole_model_still_works() {
        let cfg = tiny(3);
        let mut t = HostOffloadTrainer::new(
            cfg,
            23,
            HostOffloadConfig {
                window: 10, // clamped to layer count
                ..HostOffloadConfig::default()
            },
        );
        assert_eq!(t.window(), 3);
        let data = batch(&cfg, 11);
        let l1 = t.train_step(&data);
        assert!(l1.is_finite());
    }

    #[test]
    fn deterministic_across_runs_and_worker_counts() {
        let cfg = tiny(4);
        let run = |optimizer_workers: usize, offload_workers: usize, compute_workers: usize| {
            let mut t = HostOffloadTrainer::new(
                cfg,
                24,
                HostOffloadConfig {
                    window: 2,
                    optimizer_workers,
                    offload_workers,
                    compute_workers,
                    ..HostOffloadConfig::default()
                },
            );
            let data = batch(&cfg, 12);
            for _ in 0..4 {
                t.train_step(&data);
            }
            t.flush();
            (0..cfg.layers)
                .map(|i| t.block_params(i))
                .collect::<Vec<_>>()
        };
        let base = run(1, 1, 1);
        assert_eq!(
            base,
            run(4, 1, 1),
            "optimizer worker count must not affect results"
        );
        assert_eq!(
            base,
            run(4, 0, 1),
            "inline vs threaded gradient offload must not affect results"
        );
        assert_eq!(
            base,
            run(4, 2, 1),
            "offload engine thread count must not affect results"
        );
        assert_eq!(
            base,
            run(1, 1, 4),
            "batch-parallel compute must not affect results"
        );
        assert_eq!(
            base,
            run(4, 2, 4),
            "fully parallel pipeline must not affect results"
        );
        assert_eq!(base, run(4, 2, 4), "repeat runs must be identical");
    }

    #[test]
    fn hidden_states_for_distillation() {
        let cfg = tiny(3);
        let t = HostOffloadTrainer::new(cfg, 25, HostOffloadConfig::default());
        let tokens: Vec<u32> = (0..10).map(|i| i % cfg.vocab as u32).collect();
        let hs = t.hidden_states(&tokens);
        assert_eq!(hs.len(), 4);
        assert!(hs.iter().all(|h| h.all_finite()));
    }
}
