//! Real multi-replica data parallelism over the windowed backend (§III-F).
//!
//! [`DataParallelTrainer`] drives `w` full [`WindowedBackend`] replicas —
//! scoped threads sharing one process — through the threaded in-memory
//! collectives in `stronghold_collective::real`. Each replica trains on a
//! contiguous shard of the global batch; finished layer gradients rendezvous
//! in DDP-style buckets ([`AllReduceSink`]) that all-reduce as soon as the
//! bucket's last gradient lands, overlapping communication with the rest of
//! backward on the streaming path.
//!
//! Three properties the test suite pins down:
//!
//! * **Bit-identity.** For a power-of-two replica count dividing the batch,
//!   every replica's sample fold is a subtree of the canonical reduction
//!   tree over the global batch (see `stronghold_collective::order`), and
//!   the all-reduce folds the replica partials with the same tree over the
//!   rank index — so `w`-replica training is *bit-identical* to a
//!   single-replica run on the whole batch, bucket sizes and thread
//!   interleavings notwithstanding.
//! * **Exact traffic.** Every element crossing ranks is counted; per step
//!   the byte counters equal `4 · V_dp = 4 · w·(w−1)·E` where `E` is the
//!   per-replica gradient element count — the §III-F volume formula with
//!   zero tolerance.
//! * **Zero steady-state allocation.** Bucket buffers come from and return
//!   to the optimizer pool's recycler, and the communicator's rendezvous
//!   slots grow once; the steady-state step allocates nothing new.
//!
//! Telemetry: `comm.allreduce_bytes` (bytes through the collective, summed
//! over ranks), `comm.bucket_flushes` (bucket all-reduces), spans on the
//! `"comm"` track, and the `comm.overlap_ns` gauge (cumulative
//! communication/compute overlap).

use std::sync::{Arc, Mutex};

use stronghold_collective::order::tree_sum;
use stronghold_collective::real::{CommRank, Communicator};
use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::Transformer;

use crate::adam::AdamParams;
use crate::error::RuntimeError;
use crate::host::autotune::{AutotuneConfig, AutotuneController, StallSignals};
use crate::host::engine::{Engine, EngineOptions, GradSink, ParamBackend};
use crate::host::offloaded::{HostOffloadConfig, WindowedBackend};
use crate::schedule::LrSchedule;
use crate::telemetry::{Counter, Gauge, Telemetry};

/// Configuration for [`DataParallelTrainer`]: the windowed-backend knobs
/// plus the replica count and the gradient-bucket size.
#[derive(Clone, Debug)]
pub struct DataParallelConfig {
    /// Number of model replicas (`w`). Bit-identity with single-replica
    /// training requires a power of two dividing the batch size; any
    /// `w ≥ 1` that divides the batch trains deterministically.
    pub replicas: usize,
    /// Working-window size in layers per replica (`m`).
    pub window: usize,
    /// Gradient bucket size in **bytes**: consecutive backward-order layers
    /// are grouped until a bucket holds at least this many gradient bytes,
    /// then all-reduced together. `usize::MAX` (the default) means one
    /// whole-model bucket; small values all-reduce layer by layer,
    /// maximizing communication/backward overlap.
    pub bucket_bytes: usize,
    /// Concurrent CPU optimizer actors per replica.
    pub optimizer_workers: usize,
    /// Dedicated gradient-offload threads per replica.
    pub offload_workers: usize,
    /// Per-layer compute fan-out threads per replica.
    pub compute_workers: usize,
    /// Adam hyper-parameters.
    pub adam: AdamParams,
    /// Per-step learning-rate schedule (None → constant `adam.lr`).
    pub schedule: Option<LrSchedule>,
    /// Global gradient-norm clip threshold (None → no clipping). The norm
    /// is computed on the *reduced* gradients, so it equals the norm a
    /// single-replica run over the global batch would clip against.
    pub clip_norm: Option<f32>,
    /// Stream per-layer optimizer updates as soon as a bucket's all-reduce
    /// lands (ignored while `clip_norm` is set).
    pub streaming_dispatch: bool,
    /// Closed-loop autotuning of the per-replica window/worker knobs. One
    /// controller runs at the *trainer* level (per-replica controllers
    /// could diverge and break the SPMD lockstep): it observes the global
    /// step time and the replica-summed stall signals, and applies every
    /// proposal to all replicas identically.
    pub autotune: Option<AutotuneConfig>,
    /// Device-residency / transfer precision per replica (see
    /// [`HostOffloadConfig::precision`]). The all-reduce always rendezvous
    /// *FP32* gradients — half rounding happens per replica at D2H, before
    /// the collective — so replica sums keep full accumulation precision.
    pub precision: stronghold_tensor::Precision,
    /// Per-replica host-RAM byte budget for FP32 masters + Adam state (see
    /// [`HostOffloadConfig::host_capacity`]). Layers over budget spill to
    /// each replica's private file tier; the all-reduce path is unaffected
    /// (it rendezvous gradients, which never spill).
    pub host_capacity: Option<u64>,
    /// Spill placement policy (see [`HostOffloadConfig::spill`]).
    pub spill: crate::tier::SpillPolicy,
    /// File-tier spill/fill worker threads per replica.
    pub spill_workers: usize,
}

impl Default for DataParallelConfig {
    fn default() -> Self {
        DataParallelConfig {
            replicas: 2,
            window: 2,
            bucket_bytes: usize::MAX,
            optimizer_workers: 2,
            offload_workers: 1,
            compute_workers: 1,
            adam: AdamParams::default(),
            schedule: None,
            clip_norm: None,
            streaming_dispatch: true,
            autotune: None,
            precision: stronghold_tensor::Precision::F32,
            host_capacity: None,
            spill: crate::tier::SpillPolicy::CostAware,
            spill_workers: 1,
        }
    }
}

impl DataParallelConfig {
    fn host_config(&self) -> HostOffloadConfig {
        HostOffloadConfig {
            window: self.window,
            optimizer_workers: self.optimizer_workers,
            offload_workers: self.offload_workers,
            compute_workers: self.compute_workers,
            adam: self.adam,
            schedule: self.schedule,
            clip_norm: self.clip_norm,
            streaming_dispatch: self.streaming_dispatch,
            // Tuning is driven by the single trainer-level controller, not
            // per-replica engine controllers (which could diverge).
            autotune: None,
            precision: self.precision,
            device_capacity: None,
            host_capacity: self.host_capacity,
            spill: self.spill,
            spill_workers: self.spill_workers,
        }
    }

    fn engine_options(&self) -> EngineOptions {
        EngineOptions {
            adam: self.adam,
            schedule: self.schedule,
            clip_norm: self.clip_norm,
            streaming_dispatch: self.streaming_dispatch,
            autotune: None,
            precision: self.precision,
        }
    }
}

/// Static assignment of layers to gradient buckets.
///
/// Buckets fill in backward order (descending layers): bucket 0 holds the
/// last `per_bucket` layers, bucket 1 the `per_bucket` before those, and so
/// on — so the bucket whose gradients finish first also flushes first, and
/// its all-reduce overlaps the remaining layers' backward.
#[derive(Clone, Copy, Debug)]
struct BucketPlan {
    layers: usize,
    per_bucket: usize,
}

impl BucketPlan {
    fn new(layers: usize, layer_bytes: usize, bucket_bytes: usize) -> Self {
        let per = (bucket_bytes / layer_bytes.max(1)).clamp(1, layers.max(1));
        BucketPlan {
            layers,
            per_bucket: per,
        }
    }

    fn buckets(&self) -> usize {
        self.layers.div_ceil(self.per_bucket)
    }

    /// Inclusive ascending layer range `[lo, hi]` covered by bucket `b`.
    fn range(&self, b: usize) -> (usize, usize) {
        let hi = self.layers - 1 - b * self.per_bucket;
        let lo = self.layers.saturating_sub((b + 1) * self.per_bucket);
        (lo, hi)
    }

    /// Layers of bucket `b` in flush (descending / backward) order.
    fn layers_of(&self, b: usize) -> impl Iterator<Item = usize> {
        let (lo, hi) = self.range(b);
        (lo..=hi).rev()
    }
}

struct BucketState {
    /// Per-layer parked gradients awaiting their bucket's completion.
    pending: Vec<Option<Vec<f32>>>,
    /// Next bucket to flush. Buckets flush strictly in plan order so every
    /// rank issues the identical collective sequence (the SPMD contract of
    /// [`CommRank`]) no matter how its offload workers interleave.
    next: usize,
}

/// One rank's gradient sink: parks streaming layer gradients into buckets,
/// all-reduces each bucket across the replica group the moment it completes,
/// and only then releases the (now replica-summed) gradients to the
/// optimizer pipeline.
pub struct AllReduceSink {
    comm: CommRank,
    plan: BucketPlan,
    state: Mutex<BucketState>,
    tel: Telemetry,
    bytes: Counter,
    flushes: Counter,
}

impl AllReduceSink {
    fn new(comm: CommRank, plan: BucketPlan, tel: Telemetry) -> Self {
        let bytes = tel.counter("comm.allreduce_bytes");
        let flushes = tel.counter("comm.bucket_flushes");
        AllReduceSink {
            comm,
            plan,
            state: Mutex::new(BucketState {
                pending: (0..plan.layers).map(|_| None).collect(),
                next: 0,
            }),
            tel,
            bytes,
            flushes,
        }
    }

    /// All-reduces `parts` (one collective over their concatenation) and
    /// accounts the traffic: each rank moves `(w−1)` copies of the buffer
    /// across ranks, so the counters sum to exactly `4·w·(w−1)·len` bytes.
    fn allreduce(&self, parts: &mut [&mut [f32]], what: &str, count_flush: bool) {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let span = self.tel.span("comm", format!("allreduce {what}"));
        self.comm.allreduce_vec(parts);
        span.end();
        self.bytes
            .add((self.comm.world().saturating_sub(1) * total * 4) as u64);
        if count_flush {
            self.flushes.add(1);
        }
    }

    fn flush_bucket(
        &self,
        st: &mut BucketState,
        b: usize,
        deliver: &(dyn Fn(usize, Vec<f32>) + Sync),
    ) {
        let layers: Vec<usize> = self.plan.layers_of(b).collect();
        let mut bufs: Vec<Vec<f32>> = layers
            .iter()
            .map(|&l| st.pending[l].take().expect("bucket layer pending"))
            .collect();
        {
            let mut parts: Vec<&mut [f32]> = bufs.iter_mut().map(|v| v.as_mut_slice()).collect();
            self.allreduce(&mut parts, &format!("bucket {b}"), true);
        }
        for (l, buf) in layers.into_iter().zip(bufs) {
            deliver(l, buf);
        }
    }
}

impl GradSink for AllReduceSink {
    fn layer_ready(
        &self,
        layer: usize,
        grad: Vec<f32>,
        deliver: &(dyn Fn(usize, Vec<f32>) + Sync),
    ) {
        let mut guard = self.state.lock().expect("bucket state");
        let st: &mut BucketState = &mut guard;
        st.pending[layer] = Some(grad);
        // Flush every bucket that just became complete. The mutex is held
        // across the collective on purpose: it serializes this rank's
        // flushes (keeping the SPMD sequence), while cross-rank progress
        // only needs the *other* ranks' own flush calls, which use their
        // own locks.
        while st.next < self.plan.buckets()
            && self
                .plan
                .layers_of(st.next)
                .all(|l| st.pending[l].is_some())
        {
            let b = st.next;
            self.flush_bucket(st, b, deliver);
            st.next = b + 1;
        }
    }

    fn reduce_step(&self, grads: &mut [Vec<f32>]) {
        // Deferred path: same buckets, same descending-layer order, one
        // collective per bucket — the identical SPMD sequence the streaming
        // path issues, just all at once.
        for b in 0..self.plan.buckets() {
            let (lo, hi) = self.plan.range(b);
            let mut parts: Vec<&mut [f32]> = grads[lo..=hi]
                .iter_mut()
                .rev()
                .map(|v| v.as_mut_slice())
                .collect();
            self.allreduce(&mut parts, &format!("bucket {b}"), true);
        }
    }

    fn reduce_resident(&self, groups: [&mut [f32]; 4]) {
        // Called exactly once per step, after every bucket has flushed:
        // reset the bucket cursor for the next step, then reduce the four
        // resident groups in one vectored collective.
        {
            let mut st = self.state.lock().expect("bucket state");
            debug_assert!(st.pending.iter().all(Option::is_none));
            st.next = 0;
        }
        let mut parts: Vec<&mut [f32]> = groups.into_iter().collect();
        self.allreduce(&mut parts, "resident", false);
    }
}

/// `w` windowed replicas with rank-sharded batches, bucketed gradient
/// all-reduce, and a shared per-step barrier (the scope join).
pub struct DataParallelTrainer {
    engines: Vec<Engine<WindowedBackend>>,
    comm: Communicator,
    tel: Telemetry,
    overlap_gauge: Gauge,
    /// Trainer-level controller; proposals apply to every replica so the
    /// group stays in SPMD lockstep (see [`DataParallelConfig::autotune`]).
    autotune: Option<AutotuneController>,
}

impl DataParallelTrainer {
    /// Builds `dp.replicas` identical replicas (same `seed`, so identical
    /// initial parameters) wired to a fresh in-process communicator, with
    /// no telemetry.
    ///
    /// # Panics
    /// Panics if `dp.replicas == 0`.
    pub fn new(cfg: ModelConfig, seed: u64, dp: DataParallelConfig) -> Self {
        DataParallelTrainer::with_telemetry(cfg, seed, dp, Telemetry::disabled())
    }

    /// [`DataParallelTrainer::new`] recording into `tel`: everything the
    /// per-replica backends record, plus `comm.allreduce_bytes`,
    /// `comm.bucket_flushes`, `"comm"`-track spans, and the cumulative
    /// `comm.overlap_ns` gauge.
    pub fn with_telemetry(
        cfg: ModelConfig,
        seed: u64,
        dp: DataParallelConfig,
        tel: Telemetry,
    ) -> Self {
        assert!(dp.replicas >= 1, "need at least one replica");
        let hocfg = dp.host_config();
        let (comm, ranks) = Communicator::new(dp.replicas);
        let engines: Vec<Engine<WindowedBackend>> = ranks
            .into_iter()
            .map(|rank| {
                let backend =
                    WindowedBackend::from_model(Transformer::new(cfg, seed), &hocfg, tel.clone());
                let layer_bytes = backend.block_elems() * 4;
                let plan = BucketPlan::new(cfg.layers, layer_bytes, dp.bucket_bytes);
                let sink = Arc::new(AllReduceSink::new(rank, plan, tel.clone()));
                Engine::with_sink(backend, dp.engine_options(), sink)
            })
            .collect();
        let overlap_gauge = tel.gauge("comm.overlap_ns");
        let autotune = dp.autotune.and_then(|acfg| {
            let backend = engines[0].backend();
            backend
                .tune_limits()
                .map(|limits| AutotuneController::new(acfg, limits, backend.current_tuning(), &tel))
        });
        DataParallelTrainer {
            engines,
            comm,
            tel,
            overlap_gauge,
            autotune,
        }
    }

    /// The live trainer-level autotune controller, when configured.
    pub fn autotune(&self) -> Option<&AutotuneController> {
        self.autotune.as_ref()
    }

    /// The replica count `w`.
    pub fn replicas(&self) -> usize {
        self.comm.world()
    }

    /// The working-window size in force on every replica.
    pub fn window(&self) -> usize {
        self.engines[0].backend().window()
    }

    /// Completed optimizer steps.
    pub fn steps(&self) -> u64 {
        self.engines[0].steps()
    }

    /// The telemetry handle all replicas and the collective record into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Gradient elements one replica contributes per step — the `E` of
    /// `V_dp = w·(w−1)·E` (§III-F).
    pub fn grad_elements(&self) -> u64 {
        self.engines[0].backend().grad_elements()
    }

    /// Total bytes moved through the collective so far (all ranks).
    pub fn allreduce_bytes(&self) -> u64 {
        self.comm.bytes_moved()
    }

    /// Collective calls issued so far (bucket flushes + resident reduces).
    pub fn collective_calls(&self) -> u64 {
        self.comm.flushes()
    }

    /// One data-parallel training step over the *global* batch; every
    /// replica takes its contiguous `batch.len() / w` shard. Returns the
    /// mean loss over the whole batch, computed with the canonical
    /// reduction tree (bit-identical to a single-replica step when `w` is a
    /// power of two).
    ///
    /// # Panics
    /// Panics if the batch size is not a positive multiple of `w`.
    pub fn train_step(&mut self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        let b = batch.len();
        let w = self.engines.len();
        assert!(
            b >= w && b.is_multiple_of(w),
            "global batch {b} not divisible into {w} replica shards"
        );
        let shard = b / w;
        for e in &mut self.engines {
            e.backend_mut().set_global_batch(b);
        }
        let tune_t0 = self.autotune.as_ref().map(|_| std::time::Instant::now());
        // Raw (undivided) shard loss partials, in rank order: each rank's
        // engine returns the canonical tree-sum over its shard because the
        // backend runs in global-batch mode.
        let raw: Vec<f32> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .engines
                .iter_mut()
                .enumerate()
                .map(|(r, eng)| {
                    let my = &batch[r * shard..(r + 1) * shard];
                    scope.spawn(move || eng.train_step(my))
                })
                .collect();
            // The step barrier: every replica finishes (and has flushed its
            // collective sequence) before the step completes.
            handles
                .into_iter()
                .map(|h| h.join().expect("replica step"))
                .collect()
        });
        if self.tel.is_enabled() {
            self.overlap_gauge
                .set(self.tel.overlap_nanos("comm", "compute") as i64);
        }
        // One controller for the whole group: replica-summed signals in,
        // one proposal out, applied to every rank identically.
        if let (Some(ctrl), Some(t0)) = (self.autotune.as_mut(), tune_t0) {
            let mut sig = StallSignals::default();
            for e in &self.engines {
                let s = e.backend().stall_signals();
                sig.fetch_wait_ns += s.fetch_wait_ns;
                sig.shell_wait_ns += s.shell_wait_ns;
                sig.d2h_wait_ns += s.d2h_wait_ns;
                sig.optim_backlog += s.optim_backlog;
            }
            if let Some(t) = ctrl.observe(t0.elapsed().as_nanos() as u64, sig) {
                for e in &mut self.engines {
                    e.backend_mut().apply_tuning(t);
                }
            }
        }
        tree_sum(&raw) / b as f32
    }

    /// Mean loss over a batch without updating (replica 0; all replicas
    /// hold identical parameters).
    pub fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.engines[0].eval_loss(batch)
    }

    /// Flat parameters of block `i` on replica 0.
    pub fn block_params(&self, i: usize) -> Vec<f32> {
        self.engines[0].backend().read_block_params(i)
    }

    /// Flat parameters of block `i` on a specific replica (the lockstep
    /// assertions in the test suite read every rank).
    pub fn replica_block_params(&self, rank: usize, i: usize) -> Vec<f32> {
        self.engines[rank].backend().read_block_params(i)
    }

    /// Serializes replica 0's full training state (all replicas are
    /// bit-identical); resumable by any single-replica trainer.
    pub fn save_training_state(&self) -> bytes::Bytes {
        self.engines[0].save_training_state()
    }

    /// Blocks until every replica's in-flight optimizer updates land.
    pub fn flush(&self) {
        for e in &self.engines {
            e.backend().pool().flush();
        }
    }

    /// Validates a configuration against a model shape without building the
    /// replicas: replica count, window, and batch divisibility.
    pub fn validate(
        cfg: &ModelConfig,
        dp: &DataParallelConfig,
        global_batch: usize,
    ) -> Result<(), RuntimeError> {
        if dp.replicas == 0 {
            return Err(RuntimeError::Config("replicas must be ≥ 1".into()));
        }
        if global_batch == 0 || !global_batch.is_multiple_of(dp.replicas) {
            return Err(RuntimeError::Config(format!(
                "global batch {global_batch} is not a positive multiple of {} replicas",
                dp.replicas
            )));
        }
        if dp.window == 0 || dp.window > cfg.layers {
            return Err(RuntimeError::Config(format!(
                "window {} outside 1..={} layers",
                dp.window, cfg.layers
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::tiny;
    use stronghold_model::data::SyntheticCorpus;

    fn adam() -> AdamParams {
        AdamParams {
            lr: 2e-3,
            ..AdamParams::default()
        }
    }

    fn batch(cfg: &ModelConfig, n: usize, seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
        SyntheticCorpus::new(cfg.vocab, seed).next_batch(n, cfg.seq - 1)
    }

    #[test]
    fn bucket_plan_partitions_layers() {
        for layers in 1..9 {
            for per in 1..=layers {
                let plan = BucketPlan::new(layers, 4, per * 4);
                let mut seen: Vec<usize> = (0..plan.buckets())
                    .flat_map(|b| plan.layers_of(b).collect::<Vec<_>>())
                    .collect();
                // Flush order is descending overall.
                let mut sorted = seen.clone();
                sorted.sort_unstable_by(|a, b| b.cmp(a));
                assert_eq!(seen, sorted, "layers={layers} per={per}");
                seen.sort_unstable();
                assert_eq!(seen, (0..layers).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn bucket_plan_respects_byte_budget() {
        // 6 layers of 100 bytes, 250-byte buckets -> 2 layers per bucket.
        let plan = BucketPlan::new(6, 100, 250);
        assert_eq!(plan.per_bucket, 2);
        assert_eq!(plan.buckets(), 3);
        assert_eq!(plan.range(0), (4, 5));
        assert_eq!(plan.range(2), (0, 1));
        // Whole-model bucket.
        let plan = BucketPlan::new(6, 100, usize::MAX);
        assert_eq!(plan.buckets(), 1);
    }

    #[test]
    fn two_replicas_match_one_replica_bitwise() {
        let cfg = tiny(3);
        let data = batch(&cfg, 8, 60);
        let mut one = DataParallelTrainer::new(
            cfg,
            21,
            DataParallelConfig {
                replicas: 1,
                adam: adam(),
                ..DataParallelConfig::default()
            },
        );
        let mut two = DataParallelTrainer::new(
            cfg,
            21,
            DataParallelConfig {
                replicas: 2,
                adam: adam(),
                ..DataParallelConfig::default()
            },
        );
        for _ in 0..3 {
            let a = one.train_step(&data);
            let b = two.train_step(&data);
            assert_eq!(a, b, "losses diverged");
        }
        one.flush();
        two.flush();
        for i in 0..cfg.layers {
            assert_eq!(one.block_params(i), two.block_params(i), "block {i}");
            assert_eq!(
                two.replica_block_params(0, i),
                two.replica_block_params(1, i),
                "replicas out of lockstep at block {i}"
            );
        }
    }

    #[test]
    fn traffic_matches_formula_per_step() {
        let cfg = tiny(3);
        let data = batch(&cfg, 8, 61);
        let mut t = DataParallelTrainer::new(
            cfg,
            22,
            DataParallelConfig {
                replicas: 2,
                adam: adam(),
                ..DataParallelConfig::default()
            },
        );
        let e = t.grad_elements();
        let per_step = 4 * stronghold_collective::v_dp_exact(2, e);
        for step in 1..=3u64 {
            t.train_step(&data);
            assert_eq!(t.allreduce_bytes(), per_step * step, "after step {step}");
        }
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let cfg = tiny(3);
        let dp = DataParallelConfig::default();
        assert!(DataParallelTrainer::validate(&cfg, &dp, 8).is_ok());
        assert!(DataParallelTrainer::validate(&cfg, &dp, 7).is_err());
        assert!(DataParallelTrainer::validate(&cfg, &dp, 0).is_err());
        let bad = DataParallelConfig {
            replicas: 0,
            ..DataParallelConfig::default()
        };
        assert!(DataParallelTrainer::validate(&cfg, &bad, 8).is_err());
        let bad = DataParallelConfig {
            window: 99,
            ..DataParallelConfig::default()
        };
        assert!(DataParallelTrainer::validate(&cfg, &bad, 8).is_err());
    }
}
