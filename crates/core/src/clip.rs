//! Global gradient-norm clipping.
//!
//! Large-model training pipelines (Megatron-LM's hyper-parameters, which
//! the paper adopts in §V-B) clip the *global* gradient norm before the
//! optimizer step. Under offloading the gradients are scattered across
//! layer stores, so the norm is computed as a deterministic two-pass
//! reduction over per-layer partial sums — the same layer-ordered reduction
//! the collectives use, keeping results independent of where each layer's
//! gradient happens to live.

/// Accumulates per-layer squared-norm contributions in layer order.
#[derive(Clone, Debug, Default)]
pub struct GlobalNorm {
    sum_sq: f64,
    elements: u64,
}

impl GlobalNorm {
    /// Empty accumulator.
    pub fn new() -> Self {
        GlobalNorm::default()
    }

    /// Adds one layer's gradient (order matters for bit-reproducibility:
    /// call in ascending layer order).
    pub fn add_layer(&mut self, grads: &[f32]) {
        self.sum_sq += GlobalNorm::layer_sum_sq(grads);
        self.elements += grads.len() as u64;
    }

    /// One layer's squared-norm partial, computed the exact way
    /// [`GlobalNorm::add_layer`] computes it. Pipelines that flatten a
    /// layer's gradient on another thread can compute the partial there and
    /// fold it later with [`GlobalNorm::add_layer_sum_sq`]; because the fold
    /// is a plain f64 addition performed in the same fixed layer order, the
    /// result is bit-identical to the serial reduction.
    pub fn layer_sum_sq(grads: &[f32]) -> f64 {
        // Per-layer partial in f64 to keep the reduction well-conditioned.
        grads.iter().map(|g| (*g as f64) * (*g as f64)).sum()
    }

    /// Folds a precomputed per-layer partial (see
    /// [`GlobalNorm::layer_sum_sq`]) in the caller-chosen layer order.
    /// Element accounting is skipped: streaming callers track coverage
    /// themselves.
    pub fn add_layer_sum_sq(&mut self, sum_sq: f64) {
        self.sum_sq += sum_sq;
    }

    /// The global L2 norm accumulated so far.
    pub fn norm(&self) -> f32 {
        self.sum_sq.sqrt() as f32
    }

    /// Elements seen.
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// The scale factor that clips to `max_norm` (1.0 when already within).
    pub fn clip_scale(&self, max_norm: f32) -> f32 {
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            max_norm / n
        } else {
            1.0
        }
    }
}

/// Scales every layer's gradients by the global clip factor; returns the
/// pre-clip norm.
pub fn clip_global_norm(layers: &mut [Vec<f32>], max_norm: f32) -> f32 {
    let mut acc = GlobalNorm::new();
    for g in layers.iter() {
        acc.add_layer(g);
    }
    let scale = acc.clip_scale(max_norm);
    if scale != 1.0 {
        for g in layers.iter_mut() {
            for v in g.iter_mut() {
                *v *= scale;
            }
        }
    }
    acc.norm()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn norm_of_known_vector() {
        let mut acc = GlobalNorm::new();
        acc.add_layer(&[3.0, 0.0]);
        acc.add_layer(&[0.0, 4.0]);
        assert!((acc.norm() - 5.0).abs() < 1e-6);
        assert_eq!(acc.elements(), 4);
    }

    #[test]
    fn within_budget_is_untouched() {
        let mut layers = vec![vec![0.1f32, 0.2], vec![0.05]];
        let before = layers.clone();
        let n = clip_global_norm(&mut layers, 10.0);
        assert!(n < 10.0);
        assert_eq!(layers, before);
    }

    #[test]
    fn clipped_norm_equals_max() {
        let mut layers = vec![vec![30.0f32, 0.0], vec![0.0, 40.0]];
        let pre = clip_global_norm(&mut layers, 1.0);
        assert!((pre - 50.0).abs() < 1e-4);
        let mut acc = GlobalNorm::new();
        for g in &layers {
            acc.add_layer(g);
        }
        assert!(
            (acc.norm() - 1.0).abs() < 1e-5,
            "post-clip norm {}",
            acc.norm()
        );
    }

    #[test]
    fn layer_partition_does_not_change_norm() {
        // The norm is identical whether gradients live in one store or are
        // split across offloaded layers (the property the pipeline needs).
        let flat: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let mut one = GlobalNorm::new();
        one.add_layer(&flat);
        let mut many = GlobalNorm::new();
        for chunk in flat.chunks(7) {
            many.add_layer(chunk);
        }
        assert!((one.norm() - many.norm()).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_post_clip_norm_bounded(
            vals in proptest::collection::vec(-100.0f32..100.0, 1..200),
            max_norm in 0.1f32..10.0
        ) {
            let mut layers = vec![vals];
            clip_global_norm(&mut layers, max_norm);
            let mut acc = GlobalNorm::new();
            acc.add_layer(&layers[0]);
            prop_assert!(acc.norm() <= max_norm * 1.0001);
        }

        /// Multi-layer clipping agrees with a naive single-pass reference:
        /// scaling happens iff the flat norm exceeds the threshold, the
        /// direction is preserved, and the no-op path leaves every bit of
        /// every gradient unchanged.
        #[test]
        fn prop_matches_naive_reference(
            l0 in proptest::collection::vec(-20.0f32..20.0, 0..48),
            l1 in proptest::collection::vec(-20.0f32..20.0, 1..48),
            l2 in proptest::collection::vec(-20.0f32..20.0, 1..48),
            max_norm in 0.05f32..30.0
        ) {
            let mut layers = vec![l0, l1, l2];
            let before = layers.clone();
            // Naive reference: flatten, one f64 pass.
            let naive_norm = before
                .iter()
                .flatten()
                .map(|v| (*v as f64) * (*v as f64))
                .sum::<f64>()
                .sqrt();
            // Keep clear of the clip/no-clip boundary where f32 vs f64
            // rounding could legitimately disagree.
            prop_assume!((naive_norm - max_norm as f64).abs() > 1e-3);

            let pre = clip_global_norm(&mut layers, max_norm);
            prop_assert!(
                ((pre as f64) - naive_norm).abs() <= naive_norm * 1e-6 + 1e-6,
                "reported norm {pre} vs naive {naive_norm}"
            );

            if naive_norm < max_norm as f64 {
                // No-op path: bit-identical, not merely approximately equal.
                for (a, b) in layers.iter().flatten().zip(before.iter().flatten()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            } else {
                let scale = max_norm as f64 / naive_norm;
                for (a, b) in layers.iter().flatten().zip(before.iter().flatten()) {
                    let expect = (*b as f64) * scale;
                    prop_assert!(
                        ((*a as f64) - expect).abs() <= expect.abs() * 1e-5 + 1e-7,
                        "element {a} vs reference {expect}"
                    );
                    prop_assert!(
                        a.signum() == b.signum() || *a == 0.0 || *b == 0.0,
                        "direction flipped: {b} -> {a}"
                    );
                }
            }
        }

        #[test]
        fn prop_clip_preserves_direction(
            a in -50.0f32..50.0, b in -50.0f32..50.0
        ) {
            prop_assume!(a != 0.0 || b != 0.0);
            let mut layers = vec![vec![a, b]];
            clip_global_norm(&mut layers, 0.5);
            let (ca, cb) = (layers[0][0], layers[0][1]);
            // Cross product ~ 0 => collinear; signs preserved.
            prop_assert!((a * cb - b * ca).abs() < 1e-3);
            prop_assert!(a.signum() == ca.signum() || ca == 0.0);
        }
    }
}
