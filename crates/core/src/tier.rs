//! Tiered parameter placement and the file-backed spill tier (§III-G).
//!
//! STRONGHOLD memory-maps an NVMe swap file so secondary storage extends the
//! working-set ceiling beyond host RAM; ZeRO-Infinity generalizes the idea
//! into a GPU ↔ CPU ↔ NVMe hierarchy and 10Cache adds heterogeneous,
//! cost-aware per-tensor placement from measured tier bandwidths. This module
//! makes the third tier real in the functional substrate:
//!
//! * [`Tier`] — where one layer's FP32 master parameters + Adam moments
//!   live: host RAM (the classic [`crate::optimpool::LayerStore`] slot) or a
//!   file slot on the [`crate::nvme::NvmeStore`] swap file.
//! * [`TierPlan`] — the per-layer placement decision, derived
//!   *deterministically* from a `host_capacity` byte budget and the known
//!   layer schedule. Measured bandwidths ([`TierBandwidths`]) only
//!   *annotate* predicted migration cost; they never change the plan, so
//!   placement is reproducible run to run. Placement is invisible to the
//!   math either way: f32 ↔ little-endian file round trips are bit-exact,
//!   so a spilled layer trains bit-identically to a resident one.
//! * [`TierStore`] — the async I/O engine: a live-resizable pool of spill
//!   workers over one bounded channel, mirroring the PR 5 offload workers.
//!   Fills (file → host) are issued ahead of the working window by the
//!   backend prefetcher — the access pattern is fully known, so disk reads
//!   hide under compute exactly like H2D prefetch — and write-backs
//!   (host → file) drain in the background after each Adam update.
//!
//! Telemetry: `spill.f2h_bytes` / `spill.h2f_bytes` counters meter every
//! byte crossing the file boundary (zero-tolerance tested against the
//! closed-form per-step formulas below), `spill.queue_wait_ns` records how
//! long jobs sat queued, and an always-on fill-wait clock feeds the
//! autotuner's `fill_wait_ns` stall signal so it can resize the worker pool.
//!
//! # Per-step traffic formulas
//!
//! For a spilled layer of `S` parameters in a model of `nb` blocks with
//! window `m` (f32 everywhere — the device transfer precision never touches
//! this tier):
//!
//! * file → host: `4·S` (FP fill) `+ 4·S` if the layer is re-fetched for BP
//!   (`layer < nb − m`) `+ 12·S` (the update pages params + m + v back in);
//! * host → file: `12·S` (the update writes params + m + v back out).
//!
//! The fill cache is *evict-after-read*: a filled layer leaves RAM as soon
//! as the prefetcher stages it, so at most a window's worth of fills is
//! resident at once and the `host_capacity` budget holds through the FP→BP
//! turn.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::nvme::NvmeStore;
use crate::telemetry::{Counter, Histogram, Telemetry};

/// Where one layer's FP32 masters + Adam moments live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Tier {
    /// Host RAM — the classic resident `LayerStore` slot.
    #[default]
    Ram,
    /// A slot on the file-backed swap store (params, m, v contiguously).
    File,
}

/// Which layers spill when the resident image exceeds `host_capacity`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillPolicy {
    /// 10Cache-style: spill the cheapest layers first — the deepest layers
    /// sit inside the final working window, are never re-fetched for BP,
    /// and therefore cost the least extra I/O per step.
    #[default]
    CostAware,
    /// Spill every layer (stress/testing: the whole state image pages
    /// through the file tier).
    All,
}

/// Measured tier bandwidths (bytes per nanosecond), as probed by
/// [`crate::host::profiler::measure_tier_bandwidths`]. Used only to
/// *annotate* a [`TierPlan`] with predicted per-layer migration cost —
/// placement itself stays deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierBandwidths {
    /// Host-RAM copy bandwidth.
    pub ram_bytes_per_ns: f64,
    /// Swap-file read bandwidth.
    pub file_read_bytes_per_ns: f64,
    /// Swap-file write bandwidth.
    pub file_write_bytes_per_ns: f64,
}

/// Resident cost of one parameter in the host tier: FP32 master + Adam m +
/// Adam v, 4 bytes each.
pub const RESIDENT_BYTES_PER_PARAM: u64 = 12;

/// The per-layer placement decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierPlan {
    tiers: Vec<Tier>,
    param_len: usize,
    window: usize,
}

impl TierPlan {
    /// Derives a placement for `layers` uniform blocks of `param_len`
    /// parameters each, trained with working window `window`, under an
    /// optional `host_capacity` byte budget for the resident image
    /// (12 bytes/param/layer).
    ///
    /// Deterministic: the spill *count* is the smallest number of layers
    /// that brings the resident image within budget, and the spill *choice*
    /// is cost-ascending — deepest layers first, because layers inside the
    /// final window (`layer ≥ layers − window`) skip the BP re-fetch and
    /// are cheapest to page.
    pub fn plan(
        layers: usize,
        param_len: usize,
        window: usize,
        host_capacity: Option<u64>,
        policy: SpillPolicy,
    ) -> TierPlan {
        let spill_count = match policy {
            SpillPolicy::All => layers,
            SpillPolicy::CostAware => match host_capacity {
                None => 0,
                Some(cap) => {
                    let per_layer = RESIDENT_BYTES_PER_PARAM * param_len as u64;
                    let fit = cap.checked_div(per_layer).map_or(layers, |n| n as usize);
                    layers.saturating_sub(fit)
                }
            },
        };
        let mut tiers = vec![Tier::Ram; layers];
        for t in tiers.iter_mut().rev().take(spill_count) {
            *t = Tier::File;
        }
        TierPlan {
            tiers,
            param_len,
            window: window.min(layers.max(1)),
        }
    }

    /// Per-layer tiers.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// One layer's tier.
    pub fn tier(&self, layer: usize) -> Tier {
        self.tiers[layer]
    }

    /// How many layers spill to the file tier.
    pub fn spilled(&self) -> usize {
        self.tiers.iter().filter(|t| **t == Tier::File).count()
    }

    /// Bytes the resident (RAM) image occupies under this plan.
    pub fn resident_bytes(&self) -> u64 {
        (self.tiers.len() - self.spilled()) as u64
            * RESIDENT_BYTES_PER_PARAM
            * self.param_len as u64
    }

    /// File → host bytes one layer moves per step at window `m` (0 for
    /// resident layers). See the module formulas.
    pub fn f2h_bytes_per_step(&self, layer: usize, m: usize) -> u64 {
        if self.tiers[layer] != Tier::File {
            return 0;
        }
        let s = self.param_len as u64 * 4;
        let bp_refetch = layer < self.tiers.len().saturating_sub(m);
        s + if bp_refetch { s } else { 0 } + 3 * s
    }

    /// Host → file bytes one layer moves per step (0 for resident layers).
    pub fn h2f_bytes_per_step(&self, layer: usize) -> u64 {
        if self.tiers[layer] != Tier::File {
            return 0;
        }
        3 * self.param_len as u64 * 4
    }

    /// Predicted extra nanoseconds per step for paging `layer` through the
    /// file tier instead of RAM, from measured bandwidths — the 10Cache
    /// cost annotation (reporting only; placement never depends on it).
    pub fn predicted_spill_ns_per_step(&self, layer: usize, m: usize, bw: &TierBandwidths) -> u64 {
        if self.tiers[layer] != Tier::File {
            return 0;
        }
        let reads = self.f2h_bytes_per_step(layer, m) as f64;
        let writes = self.h2f_bytes_per_step(layer) as f64;
        let file_ns = reads / bw.file_read_bytes_per_ns.max(f64::MIN_POSITIVE)
            + writes / bw.file_write_bytes_per_ns.max(f64::MIN_POSITIVE);
        let ram_ns = (reads + writes) / bw.ram_bytes_per_ns.max(f64::MIN_POSITIVE);
        (file_ns - ram_ns).max(0.0) as u64
    }
}

/// One queued I/O job. Fills carry only the target; spills own the buffers
/// being written back (returned to the free list once the write lands).
pub(crate) enum TierJob {
    Fill {
        layer: usize,
        file_slot: usize,
        enqueued_ns: u64,
    },
    Spill {
        layer: usize,
        file_slot: usize,
        params: Vec<f32>,
        m: Vec<f32>,
        v: Vec<f32>,
        enqueued_ns: u64,
    },
    /// Consumed by exactly one worker when the pool is shrunk live.
    Retire,
}

/// Cap on recycled fill/spill buffers — same rationale as the optimizer
/// pool's gradient free list.
const MAX_RECYCLED: usize = 64;

/// Bounded queue depth: enough for a window of prefetched fills plus the
/// spill backlog of a few layers without letting the queue grow unbounded.
const QUEUE_CAP: usize = 64;

struct WorkerState {
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
    spawned: usize,
}

/// The async spill/fill engine over one [`NvmeStore`] swap file. Owned by a
/// tiered [`crate::optimpool::LayerStore`]; workers deposit fills into (and
/// clear pending flags on) the store's slots, so the two are constructed
/// together.
pub struct TierStore {
    nvme: Arc<NvmeStore>,
    slots: Arc<Vec<crate::optimpool::SlotCell>>,
    /// Floats per component (params, m or v) — one file slot is `3 * n`.
    n: usize,
    tx: Option<Sender<TierJob>>,
    rx: Receiver<TierJob>,
    inflight: Arc<(Mutex<usize>, Condvar)>,
    free: Arc<Mutex<Vec<Vec<f32>>>>,
    scratch: Arc<Mutex<Vec<Vec<u8>>>>,
    tel: Telemetry,
    f2h: Counter,
    h2f: Counter,
    queue_wait: Histogram,
    fill_wait: Arc<AtomicU64>,
    state: Mutex<WorkerState>,
}

impl TierStore {
    /// Spawns the engine with `workers` I/O threads (clamped to ≥ 1).
    pub(crate) fn new(
        nvme: Arc<NvmeStore>,
        slots: Arc<Vec<crate::optimpool::SlotCell>>,
        n: usize,
        workers: usize,
        tel: &Telemetry,
    ) -> Self {
        let (tx, rx) = bounded::<TierJob>(QUEUE_CAP);
        let store = TierStore {
            nvme,
            slots,
            n,
            tx: Some(tx),
            rx,
            inflight: Arc::new((Mutex::new(0usize), Condvar::new())),
            free: Arc::new(Mutex::new(Vec::new())),
            scratch: Arc::new(Mutex::new(Vec::new())),
            tel: tel.clone(),
            f2h: tel.counter("spill.f2h_bytes"),
            h2f: tel.counter("spill.h2f_bytes"),
            queue_wait: tel.histogram("spill.queue_wait_ns"),
            fill_wait: Arc::new(AtomicU64::new(0)),
            state: Mutex::new(WorkerState {
                handles: Vec::new(),
                workers: 0,
                spawned: 0,
            }),
        };
        store.spawn_workers(workers.max(1));
        store
    }

    fn spawn_workers(&self, count: usize) {
        let mut st = self.state.lock();
        for _ in 0..count {
            let w = st.spawned;
            st.spawned += 1;
            st.workers += 1;
            let rx = self.rx.clone();
            let nvme = Arc::clone(&self.nvme);
            let slots = Arc::clone(&self.slots);
            let inflight = Arc::clone(&self.inflight);
            let free = Arc::clone(&self.free);
            let tel = self.tel.clone();
            let f2h = self.f2h.clone();
            let h2f = self.h2f.clone();
            let queue_wait = self.queue_wait.clone();
            let n = self.n;
            st.handles.push(
                std::thread::Builder::new()
                    .name(format!("spill-{w}"))
                    .spawn(move || {
                        // Per-worker byte staging buffer: grows once, then
                        // every read/write recycles it (zero steady-state
                        // allocation).
                        let mut scratch: Vec<u8> = Vec::new();
                        while let Ok(job) = rx.recv() {
                            match job {
                                TierJob::Retire => break,
                                TierJob::Fill {
                                    layer,
                                    file_slot,
                                    enqueued_ns,
                                } => {
                                    queue_wait.record(tel.now_nanos().saturating_sub(enqueued_ns));
                                    let mut buf = free.lock().pop().unwrap_or_default();
                                    buf.clear();
                                    buf.resize(n, 0.0);
                                    {
                                        let _s = tel.span("spill-read", "fill");
                                        nvme.read_at(file_slot, 0, &mut buf, &mut scratch)
                                            .expect("spill fill read");
                                    }
                                    f2h.add(4 * n as u64);
                                    let cell = &slots[layer];
                                    let mut slot = cell.lock.lock();
                                    if slot.fill_inflight {
                                        let old = std::mem::replace(&mut slot.params, buf);
                                        slot.filled = true;
                                        slot.fill_inflight = false;
                                        cell.cv.notify_all();
                                        drop(slot);
                                        give(&free, old);
                                    } else {
                                        drop(slot);
                                        give(&free, buf);
                                    }
                                }
                                TierJob::Spill {
                                    layer,
                                    file_slot,
                                    params,
                                    m,
                                    v,
                                    enqueued_ns,
                                } => {
                                    queue_wait.record(tel.now_nanos().saturating_sub(enqueued_ns));
                                    {
                                        let _s = tel.span("spill-write", "spill");
                                        nvme.write_at(file_slot, 0, &params, &mut scratch)
                                            .expect("spill write params");
                                        nvme.write_at(file_slot, n, &m, &mut scratch)
                                            .expect("spill write m");
                                        nvme.write_at(file_slot, 2 * n, &v, &mut scratch)
                                            .expect("spill write v");
                                    }
                                    h2f.add(12 * n as u64);
                                    let cell = &slots[layer];
                                    {
                                        let mut slot = cell.lock.lock();
                                        slot.spill_inflight = false;
                                        slot.pending_update = false;
                                        cell.cv.notify_all();
                                    }
                                    give(&free, params);
                                    give(&free, m);
                                    give(&free, v);
                                }
                            }
                            let (lock, cv) = &*inflight;
                            let mut k = lock.lock();
                            *k -= 1;
                            if *k == 0 {
                                cv.notify_all();
                            }
                        }
                    })
                    .expect("spawn spill worker"),
            );
        }
    }

    /// Live-resizes the worker pool (clamped to ≥ 1) — growth spawns
    /// immediately, shrink enqueues retire sentinels. FIFO order means a
    /// resize never reorders or drops I/O, and placement never affects the
    /// math, so resizes are bit-invisible.
    pub fn set_workers(&self, workers: usize) {
        let target = workers.max(1);
        let current = self.state.lock().workers;
        if current < target {
            self.spawn_workers(target - current);
        } else if current > target {
            for _ in 0..(current - target) {
                self.send(TierJob::Retire, false);
            }
            self.state.lock().workers = target;
        }
    }

    /// Current worker-thread count (retiring workers counted out as soon as
    /// their sentinel is enqueued).
    pub fn workers(&self) -> usize {
        self.state.lock().workers
    }

    fn send(&self, job: TierJob, track: bool) {
        if track {
            let (lock, _) = &*self.inflight;
            *lock.lock() += 1;
        }
        self.tx
            .as_ref()
            .expect("tier store alive")
            .send(job)
            .expect("tier channel closed");
    }

    /// Enqueues an asynchronous fill of `layer` from `file_slot`. The caller
    /// must have set the slot's `fill_inflight` flag (and must NOT hold the
    /// slot lock — bounded-channel backpressure may block here).
    pub(crate) fn enqueue_fill(&self, layer: usize, file_slot: usize) {
        let enqueued_ns = self.tel.now_nanos();
        self.send(
            TierJob::Fill {
                layer,
                file_slot,
                enqueued_ns,
            },
            true,
        );
    }

    /// Enqueues an asynchronous write-back of `layer`'s updated state. The
    /// caller must have set `spill_inflight`; the worker clears it together
    /// with `pending_update` once the write lands.
    pub(crate) fn enqueue_spill(
        &self,
        layer: usize,
        file_slot: usize,
        params: Vec<f32>,
        m: Vec<f32>,
        v: Vec<f32>,
    ) {
        let enqueued_ns = self.tel.now_nanos();
        self.send(
            TierJob::Spill {
                layer,
                file_slot,
                params,
                m,
                v,
                enqueued_ns,
            },
            true,
        );
    }

    /// Blocks until every enqueued fill and spill has completed.
    pub fn quiesce(&self) {
        let (lock, cv) = &*self.inflight;
        let mut k = lock.lock();
        while *k > 0 {
            cv.wait(&mut k);
        }
    }

    /// A recycled `n`-float buffer (cleared, not zeroed beyond `resize`).
    pub(crate) fn buffer(&self) -> Vec<f32> {
        let mut buf = self.free.lock().pop().unwrap_or_default();
        buf.clear();
        buf.resize(self.n, 0.0);
        buf
    }

    /// Returns a float buffer to the free list.
    pub(crate) fn give_buffer(&self, buf: Vec<f32>) {
        give(&self.free, buf);
    }

    /// A recycled byte staging buffer for direct `NvmeStore` calls made off
    /// the worker threads (the optimizer actors page update state in
    /// synchronously).
    pub(crate) fn byte_scratch(&self) -> Vec<u8> {
        self.scratch.lock().pop().unwrap_or_default()
    }

    /// Returns a byte scratch to the free list.
    pub(crate) fn give_byte_scratch(&self, buf: Vec<u8>) {
        let mut pool = self.scratch.lock();
        if pool.len() < MAX_RECYCLED {
            pool.push(buf);
        }
    }

    /// The underlying swap store.
    pub fn nvme(&self) -> &NvmeStore {
        &self.nvme
    }

    /// Adds `ns` to the cumulative fill-wait clock (time readers spent
    /// blocked on file-tier fills — the autotuner's spill stall signal).
    pub(crate) fn add_fill_wait(&self, ns: u64) {
        self.fill_wait.fetch_add(ns, Ordering::Relaxed);
    }

    /// Cumulative nanoseconds readers spent blocked on fills.
    pub fn fill_wait_nanos(&self) -> u64 {
        self.fill_wait.load(Ordering::Relaxed)
    }

    /// Counts file→host traffic performed outside the worker pool (the
    /// synchronous update page-in on the optimizer actors).
    pub(crate) fn count_f2h(&self, bytes: u64) {
        self.f2h.add(bytes);
    }

    /// Telemetry handle (for spans recorded off the worker threads).
    pub(crate) fn telemetry(&self) -> &Telemetry {
        &self.tel
    }
}

fn give(free: &Mutex<Vec<Vec<f32>>>, buf: Vec<f32>) {
    let mut pool = free.lock();
    if pool.len() < MAX_RECYCLED {
        pool.push(buf);
    }
}

impl Drop for TierStore {
    fn drop(&mut self) {
        self.quiesce();
        drop(self.tx.take());
        let mut st = self.state.lock();
        for h in st.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_aware_plan_spills_deepest_first_within_budget() {
        // 8 layers × 100 params × 12 B = 9600 B resident. A 5000 B budget
        // fits 4 layers; the 4 deepest spill.
        let plan = TierPlan::plan(8, 100, 2, Some(5000), SpillPolicy::CostAware);
        assert_eq!(plan.spilled(), 4);
        assert_eq!(plan.resident_bytes(), 4800);
        for l in 0..4 {
            assert_eq!(plan.tier(l), Tier::Ram, "layer {l}");
        }
        for l in 4..8 {
            assert_eq!(plan.tier(l), Tier::File, "layer {l}");
        }
    }

    #[test]
    fn plan_without_budget_keeps_everything_resident() {
        let plan = TierPlan::plan(6, 64, 2, None, SpillPolicy::CostAware);
        assert_eq!(plan.spilled(), 0);
        assert!(plan.tiers().iter().all(|t| *t == Tier::Ram));
    }

    #[test]
    fn all_policy_spills_every_layer() {
        let plan = TierPlan::plan(5, 32, 2, None, SpillPolicy::All);
        assert_eq!(plan.spilled(), 5);
        assert_eq!(plan.resident_bytes(), 0);
    }

    #[test]
    fn per_step_traffic_formulas() {
        // 6 layers, window 2: layers 4 and 5 skip the BP re-fetch.
        let plan = TierPlan::plan(6, 10, 2, None, SpillPolicy::All);
        let s = 10 * 4;
        for l in 0..4 {
            assert_eq!(plan.f2h_bytes_per_step(l, 2), (s + s + 3 * s) as u64);
        }
        for l in 4..6 {
            assert_eq!(plan.f2h_bytes_per_step(l, 2), (s + 3 * s) as u64);
        }
        for l in 0..6 {
            assert_eq!(plan.h2f_bytes_per_step(l), (3 * s) as u64);
        }
        // Resident layers move nothing.
        let res = TierPlan::plan(6, 10, 2, None, SpillPolicy::CostAware);
        assert_eq!(res.f2h_bytes_per_step(0, 2), 0);
        assert_eq!(res.h2f_bytes_per_step(0), 0);
    }

    #[test]
    fn predicted_cost_is_positive_when_disk_slower_than_ram() {
        let plan = TierPlan::plan(4, 1000, 2, None, SpillPolicy::All);
        let bw = TierBandwidths {
            ram_bytes_per_ns: 10.0,
            file_read_bytes_per_ns: 1.0,
            file_write_bytes_per_ns: 0.5,
        };
        let cheap = plan.predicted_spill_ns_per_step(3, 2, &bw);
        let dear = plan.predicted_spill_ns_per_step(0, 2, &bw);
        assert!(cheap > 0);
        assert!(
            dear > cheap,
            "BP-refetched layer costs more: {dear} vs {cheap}"
        );
    }
}
