//! # STRONGHOLD runtime
//!
//! Reproduction of the core contribution of *"STRONGHOLD: Fast and Affordable
//! Billion-Scale Deep Learning Model Training"* (SC'22): a CPU↔GPU
//! offloading runtime that keeps only a dynamic **working window** of DNN
//! layers in device memory, prefetching and offloading layer state
//! asynchronously so data movement hides under compute.
//!
//! The runtime has two interchangeable execution substrates:
//!
//! * [`offload`] + [`trainer`] schedule iterations on the **virtual-time
//!   simulator** (`stronghold-sim`), pricing billion-parameter models on the
//!   paper's V100/A10 platforms in microseconds of wall time — this is what
//!   regenerates every figure;
//! * [`host`] runs the *same pipeline* with **real threads and real math**
//!   on small models, proving the paper's exactness claim: offloaded
//!   training produces bit-identical parameters to resident training.
//!
//! Module map (paper section → module):
//!
//! | Paper | Module |
//! |---|---|
//! | §III-C working window, Fig. 3 pipelines | [`window`], [`offload`] |
//! | §III-D analytical model (P1, P2, Eqs. 3–5) | [`analytic`], [`profile`] |
//! | §III-E1 concurrent CPU optimizers | [`optimpool`], [`adam`] |
//! | §III-E3 user-level memory management | [`bufpool`] |
//! | §III-G NVMe tier | [`nvme`], [`tier`] |
//! | §IV-A multi-stream execution | [`multistream`] |
//! | §VI-D3 inference / knowledge distillation | [`inference`] |

pub mod adam;
pub mod analytic;
pub mod bufpool;
pub mod clip;
pub mod distill;
pub mod error;
pub mod graph;
pub mod hooks;
pub mod host;
pub mod inference;
pub mod memplan;
pub mod method;
pub mod multistream;
pub mod nvme;
pub mod offload;
pub mod optimpool;
pub mod profile;
pub mod schedule;
pub mod serve;
pub mod telemetry;
pub mod tier;
pub mod trainer;
pub mod window;

pub use error::RuntimeError;
pub use method::{IterationReport, TrainingMethod};
pub use telemetry::Telemetry;
pub use trainer::{Stronghold, StrongholdOptions};
