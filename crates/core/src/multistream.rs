//! Multi-streamed GPU execution (§IV-A).
//!
//! By shrinking the resident footprint, STRONGHOLD frees enough device
//! memory to run several *executors* — each bound to a CUDA stream and
//! processing a micro-batch — against a single copy of the model
//! parameters. The warm-up phase picks the stream count: the largest `k`
//! that (a) still fits device memory and (b) actually improves simulated
//! throughput (concurrency stops paying once the SM array saturates).

use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

use crate::error::Result;
use crate::memplan::{ColdTier, StrongholdMemPlan};
use crate::offload::{simulate_iteration, OffloadOptions};

/// Upper bound on concurrent executors the runtime will consider (beyond
/// this, per-stream scheduling overhead always dominates).
pub const MAX_STREAMS: usize = 8;

/// Chooses the executor count for a configuration on a platform, as the
/// warm-up phase does: simulate candidate counts and keep the fastest
/// memory-feasible one.
pub fn choose_streams(
    cfg: &ModelConfig,
    platform: &Platform,
    opts: &OffloadOptions,
) -> Result<usize> {
    let mut best_k = 1usize;
    let mut best_tp = f64::MIN;
    for k in 1..=MAX_STREAMS.min(cfg.batch.max(1)) {
        let plan = StrongholdMemPlan::new(*cfg, k, opts.cold_tier);
        // A window of one is the minimum footprint this k could run with.
        if !plan.feasible(platform, 1) {
            break;
        }
        let candidate = OffloadOptions {
            streams: k,
            ..*opts
        };
        let Ok(report) = simulate_iteration(cfg, platform, &candidate) else {
            break;
        };
        if report.throughput > best_tp {
            best_tp = report.throughput;
            best_k = k;
        }
    }
    Ok(best_k)
}

/// The multi-stream speedup of `k` executors over a single one for a
/// configuration (diagnostic used by Fig. 11's sweep).
pub fn stream_speedup(cfg: &ModelConfig, platform: &Platform, k: usize) -> Result<f64> {
    let one = simulate_iteration(cfg, platform, &OffloadOptions::default())?;
    let many = simulate_iteration(
        cfg,
        platform,
        &OffloadOptions {
            streams: k,
            ..OffloadOptions::default()
        },
    )?;
    Ok(many.throughput / one.throughput)
}

/// Convenience: default-tier options with `k` streams.
pub fn streamed_options(k: usize) -> OffloadOptions {
    OffloadOptions {
        streams: k,
        cold_tier: ColdTier::CpuRam,
        ..OffloadOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::common_1_7b;

    #[test]
    fn chooses_more_than_one_stream_for_small_batch() {
        let cfg = common_1_7b().with_batch(4);
        let k = choose_streams(&cfg, &Platform::v100_server(), &OffloadOptions::default()).unwrap();
        assert!(
            k > 1,
            "small-batch 1.7B should benefit from multi-streaming, got k={k}"
        );
    }

    #[test]
    fn speedup_within_sane_bounds() {
        let cfg = common_1_7b().with_batch(4);
        let s = stream_speedup(&cfg, &Platform::v100_server(), 4).unwrap();
        assert!(s > 1.0 && s < 4.0, "speedup {s}");
    }

    #[test]
    fn stream_count_never_exceeds_batch() {
        let cfg = common_1_7b().with_batch(2);
        let k = choose_streams(&cfg, &Platform::v100_server(), &OffloadOptions::default()).unwrap();
        assert!(k <= 2);
    }

    #[test]
    fn streamed_options_builder() {
        let o = streamed_options(3);
        assert_eq!(o.streams, 3);
        assert!(o.concurrent_optimizers);
    }
}
