//! The STRONGHOLD iteration scheduler on the virtual-time simulator.
//!
//! Emits the exact operation pipeline of Fig. 3 — prefetch / compute /
//! offload during FP, prefetch / offload / CPU-update / compute during BP —
//! against FIFO resources, and prices it with the platform cost model. The
//! resulting timeline *is* the reproduction of the paper's Fig. 4 trace, and
//! its makespan drives every throughput figure.

use stronghold_model::config::ModelConfig;
use stronghold_model::layer::LayerSpec;
use stronghold_sim::calibration as cal;
use stronghold_sim::cost::CopyKind;
use stronghold_sim::{CostModel, FifoResource, Lane, Platform, SimTime, Timeline, WorkerPool};

use crate::analytic::solve_window;
use crate::error::{Result, RuntimeError};
use crate::memplan::{ColdTier, StrongholdMemPlan};
use crate::method::{flops_per_sample, IterationReport};
use crate::profile::LayerProfile;
use crate::telemetry::Telemetry;

/// Telemetry track name of a simulator lane. Compute tracks contain
/// `"compute"` and copy tracks contain `"copy"` so
/// [`Telemetry::copy_compute_overlap`] sees them.
fn lane_track(lane: Lane) -> String {
    match lane {
        Lane::Compute(k) => format!("sim-compute[{k}]"),
        Lane::CopyIn => "h2d-copy".to_string(),
        Lane::CopyOut => "d2h-copy".to_string(),
        Lane::CpuOptim => "cpu-optim".to_string(),
        Lane::Nvme => "nvme-io".to_string(),
        Lane::Network => "network".to_string(),
    }
}

/// Replays a simulated timeline into telemetry spans (virtual-time
/// nanoseconds), so simulator runs and real-thread runs share the same
/// metric sinks. Works for any method's [`IterationReport`] timeline.
pub fn bridge_timeline(tel: &Telemetry, tl: &Timeline) {
    if !tel.is_enabled() {
        return;
    }
    for lane in tl.lanes() {
        let track = lane_track(lane);
        let busy = tel.counter(&format!("sim.busy_ns.{track}"));
        for (start_ns, end_ns) in tl.busy_intervals(lane) {
            busy.add(end_ns - start_ns);
        }
    }
    for s in tl.segments() {
        tel.record_span(
            &lane_track(s.lane),
            &s.label,
            s.start.as_nanos(),
            s.end.as_nanos(),
        );
    }
}

/// Tunable knobs of the runtime; defaults reproduce the full system, the
/// Fig. 14 ablation toggles individual optimizations off.
#[derive(Clone, Copy, Debug)]
pub struct OffloadOptions {
    /// Working-window size; `None` derives it analytically (§III-D).
    pub window: Option<usize>,
    /// Concurrent training streams (§IV-A); 1 disables multi-streaming.
    pub streams: usize,
    /// Cold-tier placement (CPU RAM or NVMe).
    pub cold_tier: ColdTier,
    /// §III-E1 concurrent parameter update + §III-E2 heterogeneous
    /// collectives; `false` = single optimizer serialized after BP.
    pub concurrent_optimizers: bool,
    /// §III-E3 pooled user-level memory management; `false` = per-tensor
    /// device allocations on every transfer.
    pub pooled_allocator: bool,
    /// Activation-checkpoint interval in layers (§III-C: the window must be
    /// at least this wide; 1 = the paper's layer-wise default).
    pub ckpt_interval: usize,
}

impl Default for OffloadOptions {
    fn default() -> Self {
        OffloadOptions {
            window: None,
            streams: 1,
            cold_tier: ColdTier::CpuRam,
            concurrent_optimizers: true,
            pooled_allocator: true,
            ckpt_interval: 1,
        }
    }
}

/// Per-transfer penalty when the pooled allocator is disabled.
fn alloc_penalty(pooled: bool) -> SimTime {
    if pooled {
        SimTime::ZERO
    } else {
        SimTime::from_micros(cal::ALLOC_OP_US * cal::TENSORS_PER_LAYER as u64)
    }
}

/// Derives the working-window size for a configuration on a platform
/// (the product of the warm-up phase, §III-B + §III-D).
pub fn derive_window(
    cfg: &ModelConfig,
    platform: &Platform,
    opts: &OffloadOptions,
) -> Result<usize> {
    let plan = StrongholdMemPlan::new(*cfg, opts.streams, opts.cold_tier);
    // §III-C: the window must span at least one checkpoint segment so the
    // recompute of BP never needs a layer that already left the device.
    let min_m = opts.ckpt_interval.max(1);
    if let Some(m) = opts.window {
        if m < min_m {
            return Err(RuntimeError::Config(format!(
                "window {m} smaller than checkpoint interval {min_m}"
            )));
        }
        if !plan.feasible(platform, m) {
            return Err(RuntimeError::Infeasible {
                method: "STRONGHOLD".into(),
                reason: format!("window {m} exceeds memory"),
            });
        }
        return Ok(m.max(1).min(cfg.layers.max(1)));
    }
    let cost = CostModel::new(*platform);
    let profile = LayerProfile::from_cost_model(plan.layers(), &cost, cfg.batch);
    let cap = StrongholdMemPlan::gpu_capacity(platform);
    match solve_window(&profile, |m| plan.gpu_usage(m), cap) {
        Some(w) => {
            let m = w.m.max(min_m).min(cfg.layers.max(1));
            if !plan.feasible(platform, m) {
                return Err(RuntimeError::Infeasible {
                    method: "STRONGHOLD".into(),
                    reason: format!(
                        "checkpoint interval {min_m} forces window {m} beyond device memory"
                    ),
                });
            }
            Ok(m)
        }
        None => Err(RuntimeError::Infeasible {
            method: "STRONGHOLD".into(),
            reason: "no window size fits device memory".into(),
        }),
    }
}

/// Simulates one steady-state STRONGHOLD training iteration.
pub fn simulate_iteration(
    cfg: &ModelConfig,
    platform: &Platform,
    opts: &OffloadOptions,
) -> Result<IterationReport> {
    simulate_iteration_with_telemetry(cfg, platform, opts, &Telemetry::disabled())
}

/// [`simulate_iteration`] recording prefetch/offload issue and completion
/// counts, window-stall events, and the full lane trace into `tel`.
pub fn simulate_iteration_with_telemetry(
    cfg: &ModelConfig,
    platform: &Platform,
    opts: &OffloadOptions,
    tel: &Telemetry,
) -> Result<IterationReport> {
    let plan = StrongholdMemPlan::new(*cfg, opts.streams, opts.cold_tier);
    let m = derive_window(cfg, platform, opts)?;
    if !plan.feasible(platform, m) {
        return Err(RuntimeError::Infeasible {
            method: "STRONGHOLD".into(),
            reason: format!("window {m} infeasible"),
        });
    }
    let cpu_cap = StrongholdMemPlan::cpu_capacity(platform);
    if plan.cpu_usage() > cpu_cap {
        return Err(RuntimeError::Infeasible {
            method: "STRONGHOLD".into(),
            reason: "host pinned budget exceeded".into(),
        });
    }

    let cost = CostModel::new(*platform);
    let layers = plan.layers().to_vec();
    let nb = cfg.layers; // block count; layers[1..=nb] are blocks
    let k = opts.streams.max(1);
    let micro = cfg.batch.div_ceil(k);

    // Multi-stream kernel stretch: k concurrent kernels of per-kernel SM
    // utilization u share the array; once k·u exceeds 1 every kernel slows
    // proportionally, plus a per-extra-stream scheduling overhead (§IV-A).
    let u = cal::batch_util(micro as f64);
    let stretch =
        (k as f64 * u).max(1.0) * (1.0 + (k as f64 - 1.0) * cal::STREAM_OVERHEAD_FRACTION);
    // Without the pooled allocator (§III-E3 ablation), per-tensor
    // cudaMalloc/cudaFree synchronize the device and stall the compute
    // stream on every window slide.
    let compute_stall = alloc_penalty(opts.pooled_allocator) * 2;
    let kdur = |base: SimTime| SimTime::from_secs_f64(base.as_secs_f64() * stretch) + compute_stall;

    let t_async = cost.t_async();
    let apen = alloc_penalty(opts.pooled_allocator);
    let nvme = matches!(opts.cold_tier, ColdTier::Nvme { .. });

    let ckpt = |l: &LayerSpec| l.act_checkpoint_bytes * cfg.batch as u64;
    let fp_out_bytes = |l: &LayerSpec| l.param_bytes() + ckpt(l);
    let bp_in_bytes = |l: &LayerSpec| l.param_bytes() + ckpt(l);
    let bp_out_bytes = |l: &LayerSpec| l.grad_bytes();

    // Resources.
    let mut compute: Vec<FifoResource> = (0..k)
        .map(|s| FifoResource::new(format!("compute{s}")))
        .collect();
    let mut h2d = FifoResource::new("h2d");
    let mut d2h = FifoResource::new("d2h");
    let mut nvme_ch = FifoResource::new("nvme");
    let workers = if opts.concurrent_optimizers {
        cost.useful_optim_workers()
    } else {
        1
    };
    let mut pool = WorkerPool::new("adam", workers);
    let mut tl = Timeline::new();

    // Telemetry handles, hoisted so the scheduling loops pay one Option
    // check per event.
    let c_pf_issued = tel.counter("sim.prefetch.issued");
    let c_pf_done = tel.counter("sim.prefetch.completed");
    let c_off_issued = tel.counter("sim.offload.issued");
    let c_off_done = tel.counter("sim.offload.completed");
    let c_stalls = tel.counter("sim.window_stalls");
    let h_stall = tel.histogram("sim.window_stall_ns");

    let nl = layers.len();
    let zero = SimTime::ZERO;
    // Completion events per layer.
    let mut fp_end = vec![vec![zero; nl]; k];
    let mut bp_end = vec![vec![zero; nl]; k];
    let mut ci_fp = vec![zero; nl];
    let mut co_fp = vec![zero; nl];
    let mut ci_bp = vec![zero; nl];
    let mut co_bp = vec![zero; nl];
    let mut nv_r_fp = vec![zero; nl];
    let mut nv_r_bp = vec![zero; nl];

    // Layer residency classes.
    let first_window_end = m.min(nb); // blocks 1..=first_window_end resident
    let sliding_start = first_window_end + 1; // first block that slides
    let is_resident = |i: usize| i == 0 || i == nl - 1 || (1..=first_window_end).contains(&i);
    let bp_seed_start = if nb >= m { nb - m + 1 } else { 1 }; // last m blocks stay at FP end
    let stays_for_bp = |i: usize| i >= bp_seed_start.max(sliding_start);

    // ---------------- Forward propagation (Fig. 3b) ----------------
    for i in 0..nl {
        let l = &layers[i];
        // Prefetch the layer just outside the window (step 1) at the
        // pre_forward hook of layer i.
        let j = i + m;
        if (sliding_start..=nb).contains(&j) && (1..=nb).contains(&i) {
            // NVMe staging read (deeply pipelined: FIFO on the NVMe channel).
            if nvme {
                let dur = cost.nvme_read(bp_in_bytes(&layers[j])).expect("nvme");
                let (s, e) = nvme_ch.schedule(zero, dur);
                nv_r_fp[j] = e;
                tl.record(Lane::Nvme, format!("nv-r L{j}"), s, e);
            }
            // Hook fires when layer i's compute is about to start.
            let hook = fp_end[0][i.saturating_sub(1)] + t_async;
            // Slot freed by the FP offload of layer j-m-1 (m+1 slots total).
            let slot = if j > sliding_start + m {
                co_fp[j - m - 1]
            } else {
                zero
            };
            let ready = hook.max(slot).max(nv_r_fp[j]);
            // The prefetch is stalled when no window slot is free at hook
            // time — the window bound of constraint (1c) biting.
            if slot > hook {
                c_stalls.incr();
                h_stall.record((slot - hook).as_nanos());
            }
            c_pf_issued.incr();
            let dur = cost.h2d(l_bytes_fp_in(&layers[j], cfg), CopyKind::PinnedBulk) + apen;
            let (s, e) = h2d.schedule(ready, dur);
            ci_fp[j] = e;
            c_pf_done.incr();
            tl.record(Lane::CopyIn, format!("h2d L{j}"), s, e);
        }

        // Compute (step 2) on every stream.
        let base = kdur(cost.layer_fp(l, micro));
        for (s_idx, lane) in compute.iter_mut().enumerate() {
            let prev = if i > 0 { fp_end[s_idx][i - 1] } else { zero };
            let ready = prev.max(ci_fp[i]);
            let (s, e) = lane.schedule(ready, base);
            fp_end[s_idx][i] = e;
            tl.record(Lane::Compute(s_idx as u8), format!("fp L{i}"), s, e);
        }

        // Offload the finished layer (step 3) unless it stays for BP.
        if (sliding_start..=nb).contains(&i) && !stays_for_bp(i) {
            let ready = (0..k).map(|s| fp_end[s][i]).max().unwrap_or(zero) + t_async;
            c_off_issued.incr();
            let dur = cost.d2h(fp_out_bytes(l), CopyKind::PinnedBulk) + apen;
            let (s, e) = d2h.schedule(ready, dur);
            co_fp[i] = e;
            c_off_done.incr();
            tl.record(Lane::CopyOut, format!("d2h L{i}"), s, e);
            if nvme {
                let dur = cost.nvme_write(fp_out_bytes(l)).expect("nvme");
                let (s2, e2) = nvme_ch.schedule(e, dur);
                tl.record(Lane::Nvme, format!("nv-w L{i}"), s2, e2);
            }
        }
    }

    // ---------------- Backward propagation (Fig. 3c) ----------------
    let mut last_bp_all = zero; // completion of the whole BP sweep
    let mut gpu_optim_end = zero;
    let mut pending_optims: Vec<(usize, SimTime)> = Vec::new();
    for i in (0..nl).rev() {
        let l = &layers[i];

        // Step 1: prefetch the next layer in the BP direction.
        if (1..=nb).contains(&i) {
            let j = i as isize - m as isize;
            let j = if j >= sliding_start as isize {
                Some(j as usize)
            } else {
                None
            };
            if let Some(j) = j {
                if nvme {
                    let dur = cost.nvme_read(bp_in_bytes(&layers[j])).expect("nvme");
                    let (s, e) = nvme_ch.schedule(zero, dur);
                    nv_r_bp[j] = e;
                    tl.record(Lane::Nvme, format!("nv-r' L{j}"), s, e);
                }
                let hook = bp_end[0][(i + 1).min(nl - 1)] + t_async;
                // Slot freed by the BP offload of layer j+m+1.
                let slot = if j + m < nb { co_bp[j + m + 1] } else { zero };
                let ready = hook.max(slot).max(nv_r_bp[j]);
                if slot > hook {
                    c_stalls.incr();
                    h_stall.record((slot - hook).as_nanos());
                }
                c_pf_issued.incr();
                let dur = cost.h2d(bp_in_bytes(&layers[j]), CopyKind::PinnedBulk) + apen;
                let (s, e) = h2d.schedule(ready, dur);
                ci_bp[j] = e;
                c_pf_done.incr();
                tl.record(Lane::CopyIn, format!("h2d' L{j}"), s, e);
            }
        }

        // Step 4: backward compute on every stream.
        let base = kdur(cost.layer_bp(l, micro));
        for (s_idx, lane) in compute.iter_mut().enumerate() {
            let prev = if i + 1 < nl {
                bp_end[s_idx][i + 1]
            } else {
                fp_end[s_idx][nl - 1]
            };
            let fetched = if is_resident(i) || stays_for_bp(i) {
                zero
            } else {
                ci_bp[i]
            };
            let (s, e) = lane.schedule(prev.max(fetched), base);
            bp_end[s_idx][i] = e;
            tl.record(Lane::Compute(s_idx as u8), format!("bp L{i}"), s, e);
            last_bp_all = last_bp_all.max(e);
        }

        // Step 2+3: offload gradients and dispatch the CPU optimizer for
        // sliding layers; GPU optimizer for resident layers.
        let mut grads_ready = (0..k).map(|s| bp_end[s][i]).max().unwrap_or(zero) + t_async;
        if k > 1 {
            grads_ready += cost.intra_gpu_allreduce(l.grad_bytes(), k);
        }
        if (sliding_start..=nb).contains(&i) {
            c_off_issued.incr();
            let dur = cost.d2h(bp_out_bytes(l), CopyKind::PinnedBulk) + apen;
            let (s, e) = d2h.schedule(grads_ready, dur);
            co_bp[i] = e;
            c_off_done.incr();
            tl.record(Lane::CopyOut, format!("d2h' L{i}"), s, e);
            // CPU optimizer actor (§III-E1). With concurrent updates the
            // actor starts as soon as the gradients land; without the
            // optimization the single optimizer runs only after BP drains,
            // so the dispatch is deferred below.
            pending_optims.push((i, e + t_async));
            if nvme {
                let dur = cost.nvme_write(bp_out_bytes(l)).expect("nvme");
                let (s3, e3) = nvme_ch.schedule(e, dur);
                tl.record(Lane::Nvme, format!("nv-w' L{i}"), s3, e3);
            }
        } else {
            // Resident layer: fused GPU Adam right after its backward.
            let dur = cost.gpu_optim(l);
            let (s, e) = compute[0].schedule(grads_ready, dur);
            gpu_optim_end = gpu_optim_end.max(e);
            tl.record(Lane::Compute(0), format!("gopt L{i}"), s, e);
        }
    }

    // Dispatch CPU optimizer tasks. Sorted by readiness so the actor pool
    // services gradients in arrival order (deterministic across runs).
    pending_optims.sort_by_key(|(i, t)| (*t, *i));
    for (i, ready) in pending_optims {
        let ready = if opts.concurrent_optimizers {
            ready
        } else {
            ready.max(last_bp_all + t_async)
        };
        let (_, s, e) = pool.dispatch(ready, cost.cpu_optim(&layers[i]));
        tl.record(Lane::CpuOptim, format!("adam L{i}"), s, e);
    }

    let iter_time = tl.makespan().max(pool.drain_time()).max(gpu_optim_end);
    tl.assert_lanes_serialized();
    bridge_timeline(tel, &tl);

    let report = IterationReport {
        method: "STRONGHOLD".into(),
        cfg: *cfg,
        iter_time,
        throughput: 0.0,
        tflops: 0.0,
        gpu_peak: plan.gpu_usage(m),
        cpu_peak: plan.cpu_usage(),
        overlap: tl.overlap_fraction(),
        gpu_util: (0..k)
            .map(|s| tl.utilization(Lane::Compute(s as u8)))
            .sum::<f64>()
            / k as f64,
        timeline: tl,
        window: m,
    };
    Ok(report.finish(flops_per_sample(cfg), cfg.batch))
}

/// Bytes fetched for a layer during FP: parameters only (checkpoints flow
/// the other way; gradients don't exist yet).
fn l_bytes_fp_in(l: &LayerSpec, _cfg: &ModelConfig) -> u64 {
    l.param_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::{common_1_7b, model_39_4b, model_4b};

    fn v100() -> Platform {
        Platform::v100_server()
    }

    #[test]
    fn iteration_runs_for_1_7b() {
        let r = simulate_iteration(&common_1_7b(), &v100(), &OffloadOptions::default()).unwrap();
        assert!(r.iter_time > SimTime::ZERO);
        assert!(r.throughput > 0.0);
        assert!(r.window >= 1);
        assert!(r.gpu_peak < 32 * (1 << 30));
    }

    #[test]
    fn transfers_mostly_hidden_on_1_7b() {
        // The paper's key claim (§III-A): communication hides under compute.
        let r = simulate_iteration(&common_1_7b(), &v100(), &OffloadOptions::default()).unwrap();
        assert!(r.overlap > 0.85, "overlap {}", r.overlap);
    }

    #[test]
    fn headline_39b_trains_on_v100() {
        let r = simulate_iteration(&model_39_4b(), &v100(), &OffloadOptions::default()).unwrap();
        assert!(r.throughput > 0.0);
        assert!(r.gpu_peak < 31 * (1 << 30));
    }

    #[test]
    fn tflops_in_paper_band_at_batch_16() {
        // §VI-B: STRONGHOLD delivers ~6–9 TFLOPS on the V100.
        let cfg = model_4b().with_batch(16);
        let r = simulate_iteration(&cfg, &v100(), &OffloadOptions::default()).unwrap();
        assert!((4.0..11.0).contains(&r.tflops), "tflops {}", r.tflops);
    }

    #[test]
    fn ablation_concurrent_optimizers_helps() {
        let cfg = model_4b();
        let on = simulate_iteration(&cfg, &v100(), &OffloadOptions::default()).unwrap();
        let off = simulate_iteration(
            &cfg,
            &v100(),
            &OffloadOptions {
                concurrent_optimizers: false,
                ..OffloadOptions::default()
            },
        )
        .unwrap();
        assert!(
            off.iter_time > on.iter_time,
            "serialized single optimizer must be slower: {} vs {}",
            off.iter_time,
            on.iter_time
        );
    }

    #[test]
    fn ablation_pooled_allocator_helps() {
        let cfg = model_4b();
        let on = simulate_iteration(&cfg, &v100(), &OffloadOptions::default()).unwrap();
        let off = simulate_iteration(
            &cfg,
            &v100(),
            &OffloadOptions {
                pooled_allocator: false,
                ..OffloadOptions::default()
            },
        )
        .unwrap();
        assert!(off.iter_time > on.iter_time);
    }

    #[test]
    fn explicit_window_respected() {
        let opts = OffloadOptions {
            window: Some(6),
            ..OffloadOptions::default()
        };
        let r = simulate_iteration(&common_1_7b(), &v100(), &opts).unwrap();
        assert_eq!(r.window, 6);
    }

    #[test]
    fn oversized_model_rejected() {
        let cfg = stronghold_model::config::ModelConfig::new(700, 2560, 16); // ~55B
        let err = simulate_iteration(&cfg, &v100(), &OffloadOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn multistream_improves_small_batch_throughput() {
        let cfg = common_1_7b().with_batch(4);
        let one = simulate_iteration(&cfg, &v100(), &OffloadOptions::default()).unwrap();
        let four = simulate_iteration(
            &cfg,
            &v100(),
            &OffloadOptions {
                streams: 4,
                ..OffloadOptions::default()
            },
        )
        .unwrap();
        assert!(
            four.throughput > one.throughput * 1.2,
            "multi-stream {} vs single {}",
            four.throughput,
            one.throughput
        );
    }

    #[test]
    fn checkpoint_interval_widens_window() {
        // §III-C: window must span a full checkpoint segment.
        let cfg = common_1_7b();
        let base = derive_window(&cfg, &v100(), &OffloadOptions::default()).unwrap();
        let wide = derive_window(
            &cfg,
            &v100(),
            &OffloadOptions {
                ckpt_interval: 6,
                ..OffloadOptions::default()
            },
        )
        .unwrap();
        assert!(wide >= 6, "window {wide} must cover the interval");
        assert!(wide >= base);
    }

    #[test]
    fn window_below_interval_rejected() {
        let cfg = common_1_7b();
        let err = derive_window(
            &cfg,
            &v100(),
            &OffloadOptions {
                window: Some(2),
                ckpt_interval: 4,
                ..OffloadOptions::default()
            },
        );
        assert!(matches!(err, Err(crate::error::RuntimeError::Config(_))));
    }

    #[test]
    fn telemetry_records_sim_pipeline() {
        let tel = Telemetry::enabled();
        let r = simulate_iteration_with_telemetry(
            &common_1_7b(),
            &v100(),
            &OffloadOptions::default(),
            &tel,
        )
        .unwrap();
        // Every issued transfer completed, and the trace bridged 1:1.
        let issued = tel.counter("sim.prefetch.issued").get();
        assert!(issued > 0);
        assert_eq!(issued, tel.counter("sim.prefetch.completed").get());
        assert_eq!(
            tel.counter("sim.offload.issued").get(),
            tel.counter("sim.offload.completed").get()
        );
        assert_eq!(tel.spans().len(), r.timeline.segments().len());
        // Measured (interval-exact) overlap efficiency backs the paper's
        // hiding claim on this model.
        let snap = tel.snapshot_json();
        let eff = snap["overlap"]["overlap_efficiency"].as_f64().unwrap();
        assert!(eff > 0.5, "overlap efficiency {eff}");
    }

    #[test]
    fn disabled_telemetry_identical_report() {
        let cfg = common_1_7b();
        let opts = OffloadOptions::default();
        let a = simulate_iteration(&cfg, &v100(), &opts).unwrap();
        let b =
            simulate_iteration_with_telemetry(&cfg, &v100(), &opts, &Telemetry::enabled()).unwrap();
        assert_eq!(
            a.iter_time, b.iter_time,
            "instrumentation must not perturb the schedule"
        );
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.timeline.segments().len(), b.timeline.segments().len());
    }

    #[test]
    fn nvme_tier_slower_but_feasible_for_huge_model() {
        let cfg = stronghold_model::config::ModelConfig::new(1000, 2560, 16); // ~79B
        let opts = OffloadOptions {
            cold_tier: ColdTier::Nvme {
                cpu_cache_layers: 64,
            },
            ..OffloadOptions::default()
        };
        let r = simulate_iteration(&cfg, &v100(), &opts).unwrap();
        assert!(r.throughput > 0.0);
    }
}
