//! Concurrent CPU optimizer pool (§III-E1).
//!
//! STRONGHOLD creates multiple optimizers at initialization and dispatches
//! them as asynchronous actors so several layers' parameter updates run in
//! parallel on the multi-core CPU, concurrently with GPU backward
//! computation. The original system rides on Ray's gRPC actor layer; this
//! reproduction uses a crossbeam-channel worker pool with identical
//! semantics (documented substitution in DESIGN.md).
//!
//! Correctness note mirrored from the paper (§III-A "no stale updates"):
//! each update touches exactly one layer's parameters and optimizer state,
//! and a layer's parameters cannot be *read* (prefetched for the next
//! iteration) while its update is pending — enforced by [`LayerStore`].
//!
//! Mixed precision (ZeRO-Offload-style split): the store always holds
//! **FP32 master** parameters and Adam moments, regardless of the trainer's
//! device/transfer precision. Under a half mode the backends round
//! gradients through the packed transfer format *before* submission
//! ("convert-on-ingest" — the `Vec<f32>` arriving here already carries the
//! half-grid values), so the fused AdamW step below runs unchanged at the
//! memory-bandwidth floor and checkpoints serialize bit-exact FP32 masters.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::adam::{AdamParams, AdamState};
use crate::nvme::NvmeStore;
use crate::telemetry::{Gauge, Telemetry};
use crate::tier::{Tier, TierPlan, TierStore};

/// Per-layer parameter + optimizer-state storage, the "CPU RAM" side of the
/// offloading runtime. All access is through layer-granular locks.
///
/// Placement is per-layer ([`Tier`]): a slot either holds its FP32 masters
/// and Adam moments resident in RAM (the classic mode), or pages them
/// through a file slot on the [`TierStore`] spill engine (§III-G). The API
/// surface is identical either way, and — because f32 ↔ le-bytes file round
/// trips are bit-exact — so is the training math.
pub struct LayerStore {
    slots: Arc<Vec<SlotCell>>,
    /// Per-layer parameter counts (valid even for spilled layers whose
    /// RAM-side `params` vector is empty between fills).
    lens: Vec<usize>,
    placement: Vec<Tier>,
    tier: Option<TierStore>,
}

pub(crate) struct SlotCell {
    pub(crate) lock: Mutex<Slot>,
    pub(crate) cv: Condvar,
}

pub(crate) struct Slot {
    /// Resident layers: the authoritative masters. Spilled layers: an
    /// evict-after-read fill cache (empty unless `filled`).
    pub(crate) params: Vec<f32>,
    /// Resident layers: the authoritative moments. Spilled layers: `m`/`v`
    /// are empty (they live in the file slot) and only `t` is meaningful.
    pub(crate) adam: AdamState,
    pub(crate) pending_update: bool,
    /// Spilled layers only: index into the swap file.
    pub(crate) file_slot: usize,
    /// Spilled layers only: a completed fill is cached in `params`.
    pub(crate) filled: bool,
    /// Spilled layers only: a fill job is queued or running.
    pub(crate) fill_inflight: bool,
    /// Spilled layers only: the update write-back is queued or running
    /// (`pending_update` stays set until it lands).
    pub(crate) spill_inflight: bool,
}

impl Slot {
    fn resident(params: Vec<f32>) -> Self {
        let n = params.len();
        Slot {
            params,
            adam: AdamState::new(n),
            pending_update: false,
            file_slot: usize::MAX,
            filled: false,
            fill_inflight: false,
            spill_inflight: false,
        }
    }
}

impl LayerStore {
    /// Builds an all-resident store from per-layer flat parameter vectors.
    pub fn new(layer_params: Vec<Vec<f32>>) -> Arc<Self> {
        let lens: Vec<usize> = layer_params.iter().map(Vec::len).collect();
        let slots = layer_params
            .into_iter()
            .map(|p| SlotCell {
                lock: Mutex::new(Slot::resident(p)),
                cv: Condvar::new(),
            })
            .collect();
        let placement = vec![Tier::Ram; lens.len()];
        Arc::new(LayerStore {
            slots: Arc::new(slots),
            lens,
            placement,
            tier: None,
        })
    }

    /// Builds a store whose layers are placed per `plan`: `Tier::Ram` slots
    /// behave exactly as in [`LayerStore::new`]; `Tier::File` slots write
    /// their initial params + zero moments to a fresh swap file and page
    /// through `spill_workers` async I/O threads. Falls back to the plain
    /// resident store when the plan spills nothing.
    ///
    /// # Panics
    /// Panics if spilled layers have non-uniform parameter counts (the swap
    /// file uses fixed-size slots).
    pub fn tiered(
        layer_params: Vec<Vec<f32>>,
        plan: &TierPlan,
        spill_workers: usize,
        tel: &Telemetry,
    ) -> std::io::Result<Arc<Self>> {
        let lens: Vec<usize> = layer_params.iter().map(Vec::len).collect();
        let placement: Vec<Tier> = plan.tiers().to_vec();
        assert_eq!(placement.len(), lens.len(), "plan vs layer count");
        let spilled: Vec<usize> = (0..lens.len())
            .filter(|l| placement[*l] == Tier::File)
            .collect();
        if spilled.is_empty() {
            return Ok(LayerStore::new(layer_params));
        }
        let n = lens[spilled[0]];
        assert!(
            spilled.iter().all(|l| lens[*l] == n),
            "spilled layers must have uniform parameter counts"
        );
        let nvme = NvmeStore::create(spilled.len(), 3 * n)?;
        let mut scratch = Vec::new();
        let zeros = vec![0.0f32; n];
        let mut slots = Vec::with_capacity(lens.len());
        let mut next_file_slot = 0usize;
        for (l, p) in layer_params.into_iter().enumerate() {
            let slot = if placement[l] == Tier::File {
                let fs = next_file_slot;
                next_file_slot += 1;
                nvme.write_at(fs, 0, &p, &mut scratch)?;
                nvme.write_at(fs, n, &zeros, &mut scratch)?;
                nvme.write_at(fs, 2 * n, &zeros, &mut scratch)?;
                Slot {
                    params: Vec::new(),
                    adam: AdamState {
                        m: Vec::new(),
                        v: Vec::new(),
                        t: 0,
                    },
                    pending_update: false,
                    file_slot: fs,
                    filled: false,
                    fill_inflight: false,
                    spill_inflight: false,
                }
            } else {
                Slot::resident(p)
            };
            slots.push(SlotCell {
                lock: Mutex::new(slot),
                cv: Condvar::new(),
            });
        }
        let slots = Arc::new(slots);
        let tier = TierStore::new(nvme, Arc::clone(&slots), n, spill_workers, tel);
        Ok(Arc::new(LayerStore {
            slots,
            lens,
            placement,
            tier: Some(tier),
        }))
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the store holds no layers.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reads a layer's parameters (the H2D prefetch source). Blocks while an
    /// update for the layer is pending, which is exactly the dependency the
    /// paper's pipeline enforces between iteration k's optimizer and
    /// iteration k+1's prefetch.
    pub fn read_params(&self, layer: usize) -> Vec<f32> {
        let mut out = Vec::new();
        self.read_params_into(layer, &mut out);
        out
    }

    /// [`LayerStore::read_params`] into a caller-owned buffer, clearing it
    /// first. The prefetcher stages every H2D copy through one such buffer
    /// per window slot, so steady-state prefetch performs no allocation.
    ///
    /// For a spilled layer this consumes (and evicts) the fill cache,
    /// issuing a demand fill if no prefill landed ahead of the read; time
    /// spent blocked here accrues to the store's fill-wait clock — the
    /// autotuner's spill stall signal.
    pub fn read_params_into(&self, layer: usize, out: &mut Vec<f32>) {
        let cell = &self.slots[layer];
        if self.placement[layer] == Tier::Ram {
            let mut slot = cell.lock.lock();
            while slot.pending_update {
                cell.cv.wait(&mut slot);
            }
            out.clear();
            out.extend_from_slice(&slot.params);
            return;
        }
        let tier = self.tier.as_ref().expect("tiered store");
        let t0 = std::time::Instant::now();
        let mut slot = cell.lock.lock();
        loop {
            if slot.pending_update || slot.spill_inflight {
                cell.cv.wait(&mut slot);
                continue;
            }
            if slot.filled {
                out.clear();
                out.extend_from_slice(&slot.params);
                let buf = std::mem::take(&mut slot.params);
                slot.filled = false;
                drop(slot);
                tier.give_buffer(buf);
                break;
            }
            if !slot.fill_inflight {
                // Demand fill: flag it, then enqueue outside the slot lock
                // (bounded-channel backpressure must never block a worker's
                // access to this slot).
                slot.fill_inflight = true;
                let fs = slot.file_slot;
                drop(slot);
                tier.enqueue_fill(layer, fs);
                slot = cell.lock.lock();
                continue;
            }
            cell.cv.wait(&mut slot);
        }
        tier.add_fill_wait(t0.elapsed().as_nanos() as u64);
    }

    /// Issues an asynchronous fill of a spilled layer ahead of its read —
    /// the schedule-driven prefetch of the file tier. No-op for resident
    /// layers, layers already filled/filling, or layers whose update is
    /// still in flight (the file image is stale until the write-back lands;
    /// the eventual read falls back to a demand fill).
    pub fn prefill(&self, layer: usize) {
        let Some(tier) = &self.tier else { return };
        if self.placement[layer] != Tier::File {
            return;
        }
        let cell = &self.slots[layer];
        let fs = {
            let mut slot = cell.lock.lock();
            if slot.pending_update || slot.spill_inflight || slot.filled || slot.fill_inflight {
                return;
            }
            slot.fill_inflight = true;
            slot.file_slot
        };
        tier.enqueue_fill(layer, fs);
    }

    /// Marks a layer as having an in-flight update (called when gradients
    /// are offloaded, before the optimizer task is queued).
    pub fn mark_pending(&self, layer: usize) {
        self.slots[layer].lock.lock().pending_update = true;
    }

    /// Applies an Adam update for a layer and releases waiters.
    ///
    /// Resident layers step in place. Spilled layers page params + moments
    /// in from the file slot (12·S bytes), step, then hand the written-back
    /// state to the spill workers — `pending_update` stays set until the
    /// write lands, so readers and checkpoints never observe a stale file
    /// image.
    pub fn apply_update(&self, layer: usize, grads: &[f32], hp: &AdamParams) {
        let cell = &self.slots[layer];
        if self.placement[layer] == Tier::Ram {
            let mut slot = cell.lock.lock();
            let Slot { params, adam, .. } = &mut *slot;
            adam.step(params, grads, hp);
            slot.pending_update = false;
            cell.cv.notify_all();
            return;
        }
        let tier = self.tier.as_ref().expect("tiered store");
        let n = self.lens[layer];
        let (fs, t) = {
            let mut slot = cell.lock.lock();
            // Defensive: no fill may observe or race the rewrite. Prefill
            // skips pending layers, so in the steady pipeline both branches
            // are dead — but the protocol stays safe under any caller.
            while slot.fill_inflight {
                cell.cv.wait(&mut slot);
            }
            if slot.filled {
                let buf = std::mem::take(&mut slot.params);
                slot.filled = false;
                tier.give_buffer(buf);
            }
            (slot.file_slot, slot.adam.t)
        };
        let mut params = tier.buffer();
        let mut m = tier.buffer();
        let mut v = tier.buffer();
        let mut scratch = tier.byte_scratch();
        {
            let _s = tier.telemetry().span("spill-read", "update-page-in");
            tier.nvme()
                .read_at(fs, 0, &mut params, &mut scratch)
                .expect("spill update read params");
            tier.nvme()
                .read_at(fs, n, &mut m, &mut scratch)
                .expect("spill update read m");
            tier.nvme()
                .read_at(fs, 2 * n, &mut v, &mut scratch)
                .expect("spill update read v");
        }
        tier.count_f2h(12 * n as u64);
        tier.give_byte_scratch(scratch);
        let mut adam = AdamState { m, v, t };
        adam.step(&mut params, grads, hp);
        {
            let mut slot = cell.lock.lock();
            slot.adam.t = adam.t;
            slot.spill_inflight = true;
        }
        tier.enqueue_spill(layer, fs, params, adam.m, adam.v);
    }

    /// Snapshot of a layer's parameters. Resident layers impose no ordering
    /// guarantees (tests); spilled layers wait out any in-flight update so
    /// the file image read back is current.
    pub fn snapshot(&self, layer: usize) -> Vec<f32> {
        let cell = &self.slots[layer];
        if self.placement[layer] == Tier::Ram {
            return cell.lock.lock().params.clone();
        }
        let mut out = Vec::new();
        self.read_params_into(layer, &mut out);
        out
    }

    /// Total parameter count across layers.
    pub fn total_params(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Parameter count of one layer (used to validate gradient submissions
    /// before they reach an actor — a malformed gradient must fail fast on
    /// the submitting thread, not poison a pool worker).
    pub fn param_len(&self, layer: usize) -> usize {
        self.lens[layer]
    }

    /// Snapshot of a layer's Adam moment state (checkpointing). Callers must
    /// flush the optimizer pool (and, for tiered stores, the spill engine —
    /// [`LayerStore::flush_spill`]) first; for resident layers this does not
    /// wait for pending updates, for spilled layers it waits out an
    /// in-flight write-back before reading the file image.
    pub fn adam_snapshot(&self, layer: usize) -> AdamState {
        let cell = &self.slots[layer];
        if self.placement[layer] == Tier::Ram {
            return cell.lock.lock().adam.clone();
        }
        let tier = self.tier.as_ref().expect("tiered store");
        let n = self.lens[layer];
        let (fs, t) = {
            let mut slot = cell.lock.lock();
            while slot.pending_update || slot.spill_inflight {
                cell.cv.wait(&mut slot);
            }
            (slot.file_slot, slot.adam.t)
        };
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut scratch = tier.byte_scratch();
        tier.nvme()
            .read_at(fs, n, &mut m, &mut scratch)
            .expect("adam snapshot read m");
        tier.nvme()
            .read_at(fs, 2 * n, &mut v, &mut scratch)
            .expect("adam snapshot read v");
        tier.give_byte_scratch(scratch);
        AdamState { m, v, t }
    }

    /// Replaces a layer's Adam moment state (checkpoint restore).
    ///
    /// # Panics
    /// Panics if the state's moment length does not match the layer.
    pub fn set_adam(&self, layer: usize, state: AdamState) {
        assert_eq!(
            state.m.len(),
            self.lens[layer],
            "adam state length mismatch for layer {layer}"
        );
        let cell = &self.slots[layer];
        if self.placement[layer] == Tier::Ram {
            cell.lock.lock().adam = state;
            return;
        }
        let tier = self.tier.as_ref().expect("tiered store");
        let n = self.lens[layer];
        let fs = {
            let mut slot = cell.lock.lock();
            while slot.pending_update || slot.spill_inflight || slot.fill_inflight {
                cell.cv.wait(&mut slot);
            }
            slot.adam.t = state.t;
            slot.file_slot
        };
        let mut scratch = tier.byte_scratch();
        tier.nvme()
            .write_at(fs, n, &state.m, &mut scratch)
            .expect("set_adam write m");
        tier.nvme()
            .write_at(fs, 2 * n, &state.v, &mut scratch)
            .expect("set_adam write v");
        tier.give_byte_scratch(scratch);
    }

    /// Per-layer placement under the active [`TierPlan`] (all `Ram` for
    /// plain stores).
    pub fn placement(&self) -> &[Tier] {
        &self.placement
    }

    /// How many layers page through the file tier.
    pub fn spilled_layers(&self) -> usize {
        self.placement.iter().filter(|t| **t == Tier::File).count()
    }

    /// The spill engine, when this store is tiered.
    pub fn tier_store(&self) -> Option<&TierStore> {
        self.tier.as_ref()
    }

    /// Blocks until every enqueued fill/spill has completed. Callers
    /// checkpointing a tiered store run this *after* the optimizer-pool
    /// flush (updates enqueue their write-backs inside `apply_update`, so
    /// pool-then-tier ordering drains everything).
    pub fn flush_spill(&self) {
        if let Some(tier) = &self.tier {
            tier.quiesce();
        }
    }

    /// Cumulative nanoseconds readers spent blocked on file-tier fills.
    pub fn fill_wait_nanos(&self) -> u64 {
        self.tier.as_ref().map_or(0, TierStore::fill_wait_nanos)
    }

    /// Current spill-worker count (0 for plain stores).
    pub fn spill_workers(&self) -> usize {
        self.tier.as_ref().map_or(0, TierStore::workers)
    }

    /// Live-resizes the spill-worker pool; no-op for plain stores.
    pub fn set_spill_workers(&self, workers: usize) {
        if let Some(tier) = &self.tier {
            tier.set_workers(workers);
        }
    }
}

/// An asynchronous parameter-update task. Carries its own hyper-params so a
/// per-step learning-rate schedule reaches the actors without reconfiguring
/// the pool.
struct UpdateTask {
    layer: usize,
    grads: Vec<f32>,
    hp: AdamParams,
}

/// What travels over the pool channel: a real update, or a retire sentinel
/// consumed by exactly one worker when the pool is shrunk live.
enum Task {
    Update(UpdateTask),
    Retire,
}

/// Cap on the gradient-buffer free list. In steady state at most
/// `layers` buffers are in flight at once, and each retains the capacity
/// of the largest layer it ever carried.
const MAX_RECYCLED: usize = 64;

/// The concurrent optimizer pool: `workers` actor threads applying
/// update tasks against a shared [`LayerStore`].
pub struct OptimizerPool {
    store: Arc<LayerStore>,
    hp: AdamParams,
    tx: Option<Sender<Task>>,
    rx: Receiver<Task>,
    tel: Telemetry,
    inflight: Arc<(Mutex<usize>, Condvar)>,
    updates: Arc<AtomicUsize>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
    spawned: usize,
    queue_depth: Gauge,
    recycle: Arc<Mutex<Vec<Vec<f32>>>>,
    reuses: AtomicUsize,
}

impl OptimizerPool {
    /// Spawns `workers` optimizer actors over `store` with hyper-params `hp`.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(store: Arc<LayerStore>, hp: AdamParams, workers: usize) -> Self {
        OptimizerPool::with_telemetry(store, hp, workers, &Telemetry::disabled())
    }

    /// [`OptimizerPool::new`] recording per-update latency
    /// (`optim.update_ns`), cumulative worker busy time (`optim.busy_ns`)
    /// and live queue depth (`optim.queue_depth`) into `tel`.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn with_telemetry(
        store: Arc<LayerStore>,
        hp: AdamParams,
        workers: usize,
        tel: &Telemetry,
    ) -> Self {
        assert!(workers > 0);
        let (tx, rx) = unbounded::<Task>();
        let mut pool = OptimizerPool {
            store,
            hp,
            tx: Some(tx),
            rx,
            tel: tel.clone(),
            inflight: Arc::new((Mutex::new(0usize), Condvar::new())),
            updates: Arc::new(AtomicUsize::new(0)),
            handles: Vec::with_capacity(workers),
            workers: 0,
            spawned: 0,
            queue_depth: tel.gauge("optim.queue_depth"),
            recycle: Arc::new(Mutex::new(Vec::new())),
            reuses: AtomicUsize::new(0),
        };
        for _ in 0..workers {
            pool.spawn_worker();
        }
        pool
    }

    /// Spawns one more actor thread on the shared task channel.
    fn spawn_worker(&mut self) {
        let w = self.spawned;
        self.spawned += 1;
        self.workers += 1;
        let rx = self.rx.clone();
        let store = Arc::clone(&self.store);
        let inflight = Arc::clone(&self.inflight);
        let updates = Arc::clone(&self.updates);
        let tel = self.tel.clone();
        let queue_depth = self.queue_depth.clone();
        let recycle = Arc::clone(&self.recycle);
        self.handles.push(
            std::thread::Builder::new()
                .name(format!("optim-{w}"))
                .spawn(move || {
                    let update_ns = tel.histogram("optim.update_ns");
                    let busy_ns = tel.counter("optim.busy_ns");
                    while let Ok(task) = rx.recv() {
                        let task = match task {
                            Task::Update(t) => t,
                            Task::Retire => break,
                        };
                        queue_depth.add(-1);
                        let t0 = tel.now_nanos();
                        store.apply_update(task.layer, &task.grads, &task.hp);
                        let dt = tel.now_nanos().saturating_sub(t0);
                        update_ns.record(dt);
                        busy_ns.add(dt);
                        updates.fetch_add(1, Ordering::SeqCst);
                        {
                            let mut free = recycle.lock();
                            if free.len() < MAX_RECYCLED {
                                free.push(task.grads);
                            }
                        }
                        let (lock, cv) = &*inflight;
                        let mut n = lock.lock();
                        *n -= 1;
                        if *n == 0 {
                            cv.notify_all();
                        }
                    }
                })
                .expect("spawn optimizer worker"),
        );
    }

    /// Live-resizes the pool to `workers` actors (clamped to at least 1).
    /// Growth spawns new threads on the shared channel immediately; shrink
    /// enqueues retire sentinels, each consumed by exactly one worker after
    /// it drains whatever updates precede the sentinel in FIFO order — so a
    /// resize never reorders or drops updates. Intended to run between
    /// steps; worker count never affects update results (each task touches
    /// one layer under its own lock), so a live resize is bit-invisible.
    pub fn set_workers(&mut self, workers: usize) {
        let target = workers.max(1);
        while self.workers < target {
            self.spawn_worker();
        }
        while self.workers > target {
            self.tx
                .as_ref()
                .expect("pool alive")
                .send(Task::Retire)
                .expect("optimizer pool channel closed");
            self.workers -= 1;
        }
    }

    /// Current actor-thread count (retiring workers are counted out as soon
    /// as their sentinel is enqueued).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Updates submitted but not yet applied — the pool's live backlog, as
    /// sampled by the autotuner at step boundaries.
    pub fn pending(&self) -> usize {
        *self.inflight.0.lock()
    }

    /// Submits an asynchronous update for `layer`. The caller must have
    /// called [`LayerStore::mark_pending`] when the gradients left the GPU.
    ///
    /// The gradients are copied into a buffer drawn from the pool's free
    /// list (refilled by workers as updates retire), so steady-state
    /// submission allocates nothing and the caller keeps its own buffer
    /// for reuse — the "D2H copy" of §III-E3 without a fresh staging
    /// vector per layer per step.
    pub fn submit(&self, layer: usize, grads: &[f32]) {
        self.submit_with(layer, grads, self.hp);
    }

    /// [`OptimizerPool::submit`] with explicit hyper-params for this one
    /// update — the hook through which the training engine drives a
    /// per-step [`crate::schedule::LrSchedule`] into the async actors.
    pub fn submit_with(&self, layer: usize, grads: &[f32], hp: AdamParams) {
        let mut buf = self.recycled_buffer();
        buf.extend_from_slice(grads);
        self.submit_owned(layer, buf, hp);
    }

    /// An empty gradient buffer drawn from the pool's free list (refilled by
    /// workers as updates retire). Fill it and hand it back through
    /// [`OptimizerPool::submit_owned`] — the offload thread flattens layer
    /// gradients *directly* into such a buffer, so a streamed update pays no
    /// copy beyond the flatten itself.
    pub fn recycled_buffer(&self) -> Vec<f32> {
        match self.recycle.lock().pop() {
            Some(mut buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns an unused buffer to the free list without submitting an
    /// update — for callers (e.g. a gradient sink) that drew more recycled
    /// buffers than they ended up dispatching.
    pub fn give_back(&self, mut buf: Vec<f32>) {
        buf.clear();
        let mut free = self.recycle.lock();
        if free.len() < MAX_RECYCLED {
            free.push(buf);
        }
    }

    /// How many [`OptimizerPool::recycled_buffer`] calls were satisfied from
    /// the free list instead of allocating — the zero-allocation suite
    /// asserts this climbs once the pipeline reaches steady state.
    pub fn buffer_reuses(&self) -> usize {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Submits an update whose gradient buffer the caller already owns
    /// (typically one from [`OptimizerPool::recycled_buffer`]); the buffer
    /// travels to the worker without another copy and returns to the free
    /// list when the update retires.
    pub fn submit_owned(&self, layer: usize, grads: Vec<f32>, hp: AdamParams) {
        assert_eq!(
            grads.len(),
            self.store.param_len(layer),
            "gradient length mismatch for layer {layer}"
        );
        {
            let (lock, _) = &*self.inflight;
            *lock.lock() += 1;
        }
        self.queue_depth.add(1);
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Task::Update(UpdateTask { layer, grads, hp }))
            .expect("optimizer pool channel closed");
    }

    /// Blocks until every submitted update has been applied.
    pub fn flush(&self) {
        let (lock, cv) = &*self.inflight;
        let mut n = lock.lock();
        while *n > 0 {
            cv.wait(&mut n);
        }
    }

    /// Total updates applied since creation.
    pub fn updates_applied(&self) -> usize {
        self.updates.load(Ordering::SeqCst)
    }
}

impl Drop for OptimizerPool {
    fn drop(&mut self) {
        self.flush();
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(layers: usize, n: usize) -> Arc<LayerStore> {
        LayerStore::new(
            (0..layers)
                .map(|l| (0..n).map(|i| (l * n + i) as f32 * 0.01).collect())
                .collect(),
        )
    }

    #[test]
    fn recycler_reuses_and_takes_buffers_back() {
        let store = store_with(1, 8);
        let pool = OptimizerPool::new(Arc::clone(&store), AdamParams::default(), 1);
        assert_eq!(pool.buffer_reuses(), 0);
        // Nothing retired yet: first draw allocates fresh.
        let buf = pool.recycled_buffer();
        assert_eq!(pool.buffer_reuses(), 0);
        // Returned buffers are drawn again (capacity preserved, contents
        // cleared) and counted as reuses.
        pool.give_back({
            let mut b = buf;
            b.extend_from_slice(&[1.0; 8]);
            b
        });
        let again = pool.recycled_buffer();
        assert!(again.is_empty());
        assert_eq!(pool.buffer_reuses(), 1);
        // Buffers retired by workers also land on the free list.
        store.mark_pending(0);
        pool.submit(0, &[0.5; 8]);
        pool.flush();
        let _ = pool.recycled_buffer();
        assert_eq!(pool.buffer_reuses(), 2);
    }

    #[test]
    fn pool_matches_sequential_adam_any_worker_count() {
        let hp = AdamParams::default();
        let grads: Vec<Vec<f32>> = (0..6)
            .map(|l| (0..32).map(|i| ((l + i) as f32).cos()).collect())
            .collect();

        // Sequential reference.
        let seq = store_with(6, 32);
        for (l, g) in grads.iter().enumerate() {
            seq.apply_update(l, g, &hp);
        }

        for workers in [1, 2, 4, 8] {
            let store = store_with(6, 32);
            let pool = OptimizerPool::new(Arc::clone(&store), hp, workers);
            for (l, g) in grads.iter().enumerate() {
                store.mark_pending(l);
                pool.submit(l, g);
            }
            pool.flush();
            for l in 0..6 {
                assert_eq!(
                    store.snapshot(l),
                    seq.snapshot(l),
                    "layer {l}, workers {workers}"
                );
            }
            assert_eq!(pool.updates_applied(), 6);
        }
    }

    #[test]
    fn read_params_waits_for_pending_update() {
        let store = store_with(1, 8);
        let hp = AdamParams::default();
        store.mark_pending(0);
        let store2 = Arc::clone(&store);
        let reader = std::thread::spawn(move || store2.read_params(0));
        // Give the reader time to block, then apply the update.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !reader.is_finished(),
            "reader should block on pending update"
        );
        store.apply_update(0, &[1.0; 8], &hp);
        let seen = reader.join().unwrap();
        assert_eq!(
            seen,
            store.snapshot(0),
            "reader must observe post-update params"
        );
    }

    #[test]
    fn many_updates_across_layers_complete() {
        let store = store_with(16, 64);
        let pool = OptimizerPool::new(Arc::clone(&store), AdamParams::default(), 4);
        for iter in 0..10 {
            for l in 0..16 {
                store.mark_pending(l);
                pool.submit(l, &vec![0.01 * (iter + 1) as f32; 64]);
            }
            pool.flush();
        }
        assert_eq!(pool.updates_applied(), 160);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn malformed_gradient_rejected_at_submit() {
        let store = store_with(2, 8);
        let pool = OptimizerPool::new(Arc::clone(&store), AdamParams::default(), 2);
        store.mark_pending(0);
        pool.submit(0, &[1.0; 5]); // wrong length: panics here, not in a worker
    }

    #[test]
    fn telemetry_counts_updates_and_latency() {
        let tel = Telemetry::enabled();
        let store = store_with(4, 32);
        let pool =
            OptimizerPool::with_telemetry(Arc::clone(&store), AdamParams::default(), 2, &tel);
        for l in 0..4 {
            store.mark_pending(l);
            pool.submit(l, &[0.5; 32]);
        }
        pool.flush();
        let h = tel.histogram("optim.update_ns");
        assert_eq!(h.count(), 4, "one latency sample per update");
        assert_eq!(tel.counter("optim.busy_ns").get(), h.sum());
        let depth = tel.gauge("optim.queue_depth");
        assert_eq!(depth.get(), 0, "queue drained");
        assert!(depth.peak() >= 1);
    }

    #[test]
    fn live_worker_resize_preserves_results() {
        let hp = AdamParams::default();
        let grads: Vec<Vec<f32>> = (0..8)
            .map(|l| (0..16).map(|i| ((l * 3 + i) as f32).sin()).collect())
            .collect();

        let seq = store_with(8, 16);
        for _ in 0..3 {
            for (l, g) in grads.iter().enumerate() {
                seq.apply_update(l, g, &hp);
            }
        }

        let store = store_with(8, 16);
        let mut pool = OptimizerPool::new(Arc::clone(&store), hp, 1);
        for round in 0..3 {
            for (l, g) in grads.iter().enumerate() {
                store.mark_pending(l);
                pool.submit(l, g);
            }
            pool.flush();
            // Resize between rounds: grow, then shrink back below start.
            pool.set_workers([4, 2, 1][round]);
            assert_eq!(pool.workers(), [4, 2, 1][round]);
        }
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.updates_applied(), 24);
        for l in 0..8 {
            assert_eq!(store.snapshot(l), seq.snapshot(l), "layer {l}");
        }
        // Shrink to zero clamps to one worker and the pool still works.
        pool.set_workers(0);
        assert_eq!(pool.workers(), 1);
        store.mark_pending(0);
        pool.submit(0, &grads[0]);
        pool.flush();
        assert_eq!(pool.updates_applied(), 25);
    }

    #[test]
    fn store_total_params() {
        let store = store_with(3, 10);
        assert_eq!(store.total_params(), 30);
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
    }
}
