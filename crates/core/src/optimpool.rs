//! Concurrent CPU optimizer pool (§III-E1).
//!
//! STRONGHOLD creates multiple optimizers at initialization and dispatches
//! them as asynchronous actors so several layers' parameter updates run in
//! parallel on the multi-core CPU, concurrently with GPU backward
//! computation. The original system rides on Ray's gRPC actor layer; this
//! reproduction uses a crossbeam-channel worker pool with identical
//! semantics (documented substitution in DESIGN.md).
//!
//! Correctness note mirrored from the paper (§III-A "no stale updates"):
//! each update touches exactly one layer's parameters and optimizer state,
//! and a layer's parameters cannot be *read* (prefetched for the next
//! iteration) while its update is pending — enforced by [`LayerStore`].
//!
//! Mixed precision (ZeRO-Offload-style split): the store always holds
//! **FP32 master** parameters and Adam moments, regardless of the trainer's
//! device/transfer precision. Under a half mode the backends round
//! gradients through the packed transfer format *before* submission
//! ("convert-on-ingest" — the `Vec<f32>` arriving here already carries the
//! half-grid values), so the fused AdamW step below runs unchanged at the
//! memory-bandwidth floor and checkpoints serialize bit-exact FP32 masters.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::adam::{AdamParams, AdamState};
use crate::telemetry::{Gauge, Telemetry};

/// Per-layer parameter + optimizer-state storage, the "CPU RAM" side of the
/// offloading runtime. All access is through layer-granular locks.
pub struct LayerStore {
    slots: Vec<SlotCell>,
}

struct SlotCell {
    lock: Mutex<Slot>,
    cv: Condvar,
}

struct Slot {
    params: Vec<f32>,
    adam: AdamState,
    pending_update: bool,
}

impl LayerStore {
    /// Builds a store from per-layer flat parameter vectors.
    pub fn new(layer_params: Vec<Vec<f32>>) -> Arc<Self> {
        let slots = layer_params
            .into_iter()
            .map(|p| {
                let n = p.len();
                SlotCell {
                    lock: Mutex::new(Slot {
                        params: p,
                        adam: AdamState::new(n),
                        pending_update: false,
                    }),
                    cv: Condvar::new(),
                }
            })
            .collect();
        Arc::new(LayerStore { slots })
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the store holds no layers.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reads a layer's parameters (the H2D prefetch source). Blocks while an
    /// update for the layer is pending, which is exactly the dependency the
    /// paper's pipeline enforces between iteration k's optimizer and
    /// iteration k+1's prefetch.
    pub fn read_params(&self, layer: usize) -> Vec<f32> {
        let mut out = Vec::new();
        self.read_params_into(layer, &mut out);
        out
    }

    /// [`LayerStore::read_params`] into a caller-owned buffer, clearing it
    /// first. The prefetcher stages every H2D copy through one such buffer
    /// per window slot, so steady-state prefetch performs no allocation.
    pub fn read_params_into(&self, layer: usize, out: &mut Vec<f32>) {
        let cell = &self.slots[layer];
        let mut slot = cell.lock.lock();
        while slot.pending_update {
            cell.cv.wait(&mut slot);
        }
        out.clear();
        out.extend_from_slice(&slot.params);
    }

    /// Marks a layer as having an in-flight update (called when gradients
    /// are offloaded, before the optimizer task is queued).
    pub fn mark_pending(&self, layer: usize) {
        self.slots[layer].lock.lock().pending_update = true;
    }

    /// Applies an Adam update for a layer and releases waiters.
    pub fn apply_update(&self, layer: usize, grads: &[f32], hp: &AdamParams) {
        let cell = &self.slots[layer];
        let mut slot = cell.lock.lock();
        let Slot { params, adam, .. } = &mut *slot;
        adam.step(params, grads, hp);
        slot.pending_update = false;
        cell.cv.notify_all();
    }

    /// Snapshot of a layer's parameters without ordering guarantees (tests).
    pub fn snapshot(&self, layer: usize) -> Vec<f32> {
        self.slots[layer].lock.lock().params.clone()
    }

    /// Total parameter count across layers.
    pub fn total_params(&self) -> usize {
        self.slots.iter().map(|c| c.lock.lock().params.len()).sum()
    }

    /// Parameter count of one layer (used to validate gradient submissions
    /// before they reach an actor — a malformed gradient must fail fast on
    /// the submitting thread, not poison a pool worker).
    pub fn param_len(&self, layer: usize) -> usize {
        self.slots[layer].lock.lock().params.len()
    }

    /// Snapshot of a layer's Adam moment state (checkpointing). Callers must
    /// flush the optimizer pool first; this does not wait for pending
    /// updates.
    pub fn adam_snapshot(&self, layer: usize) -> AdamState {
        self.slots[layer].lock.lock().adam.clone()
    }

    /// Replaces a layer's Adam moment state (checkpoint restore).
    ///
    /// # Panics
    /// Panics if the state's moment length does not match the layer.
    pub fn set_adam(&self, layer: usize, state: AdamState) {
        let mut slot = self.slots[layer].lock.lock();
        assert_eq!(
            state.m.len(),
            slot.params.len(),
            "adam state length mismatch for layer {layer}"
        );
        slot.adam = state;
    }
}

/// An asynchronous parameter-update task. Carries its own hyper-params so a
/// per-step learning-rate schedule reaches the actors without reconfiguring
/// the pool.
struct UpdateTask {
    layer: usize,
    grads: Vec<f32>,
    hp: AdamParams,
}

/// What travels over the pool channel: a real update, or a retire sentinel
/// consumed by exactly one worker when the pool is shrunk live.
enum Task {
    Update(UpdateTask),
    Retire,
}

/// Cap on the gradient-buffer free list. In steady state at most
/// `layers` buffers are in flight at once, and each retains the capacity
/// of the largest layer it ever carried.
const MAX_RECYCLED: usize = 64;

/// The concurrent optimizer pool: `workers` actor threads applying
/// update tasks against a shared [`LayerStore`].
pub struct OptimizerPool {
    store: Arc<LayerStore>,
    hp: AdamParams,
    tx: Option<Sender<Task>>,
    rx: Receiver<Task>,
    tel: Telemetry,
    inflight: Arc<(Mutex<usize>, Condvar)>,
    updates: Arc<AtomicUsize>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
    spawned: usize,
    queue_depth: Gauge,
    recycle: Arc<Mutex<Vec<Vec<f32>>>>,
    reuses: AtomicUsize,
}

impl OptimizerPool {
    /// Spawns `workers` optimizer actors over `store` with hyper-params `hp`.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(store: Arc<LayerStore>, hp: AdamParams, workers: usize) -> Self {
        OptimizerPool::with_telemetry(store, hp, workers, &Telemetry::disabled())
    }

    /// [`OptimizerPool::new`] recording per-update latency
    /// (`optim.update_ns`), cumulative worker busy time (`optim.busy_ns`)
    /// and live queue depth (`optim.queue_depth`) into `tel`.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn with_telemetry(
        store: Arc<LayerStore>,
        hp: AdamParams,
        workers: usize,
        tel: &Telemetry,
    ) -> Self {
        assert!(workers > 0);
        let (tx, rx) = unbounded::<Task>();
        let mut pool = OptimizerPool {
            store,
            hp,
            tx: Some(tx),
            rx,
            tel: tel.clone(),
            inflight: Arc::new((Mutex::new(0usize), Condvar::new())),
            updates: Arc::new(AtomicUsize::new(0)),
            handles: Vec::with_capacity(workers),
            workers: 0,
            spawned: 0,
            queue_depth: tel.gauge("optim.queue_depth"),
            recycle: Arc::new(Mutex::new(Vec::new())),
            reuses: AtomicUsize::new(0),
        };
        for _ in 0..workers {
            pool.spawn_worker();
        }
        pool
    }

    /// Spawns one more actor thread on the shared task channel.
    fn spawn_worker(&mut self) {
        let w = self.spawned;
        self.spawned += 1;
        self.workers += 1;
        let rx = self.rx.clone();
        let store = Arc::clone(&self.store);
        let inflight = Arc::clone(&self.inflight);
        let updates = Arc::clone(&self.updates);
        let tel = self.tel.clone();
        let queue_depth = self.queue_depth.clone();
        let recycle = Arc::clone(&self.recycle);
        self.handles.push(
            std::thread::Builder::new()
                .name(format!("optim-{w}"))
                .spawn(move || {
                    let update_ns = tel.histogram("optim.update_ns");
                    let busy_ns = tel.counter("optim.busy_ns");
                    while let Ok(task) = rx.recv() {
                        let task = match task {
                            Task::Update(t) => t,
                            Task::Retire => break,
                        };
                        queue_depth.add(-1);
                        let t0 = tel.now_nanos();
                        store.apply_update(task.layer, &task.grads, &task.hp);
                        let dt = tel.now_nanos().saturating_sub(t0);
                        update_ns.record(dt);
                        busy_ns.add(dt);
                        updates.fetch_add(1, Ordering::SeqCst);
                        {
                            let mut free = recycle.lock();
                            if free.len() < MAX_RECYCLED {
                                free.push(task.grads);
                            }
                        }
                        let (lock, cv) = &*inflight;
                        let mut n = lock.lock();
                        *n -= 1;
                        if *n == 0 {
                            cv.notify_all();
                        }
                    }
                })
                .expect("spawn optimizer worker"),
        );
    }

    /// Live-resizes the pool to `workers` actors (clamped to at least 1).
    /// Growth spawns new threads on the shared channel immediately; shrink
    /// enqueues retire sentinels, each consumed by exactly one worker after
    /// it drains whatever updates precede the sentinel in FIFO order — so a
    /// resize never reorders or drops updates. Intended to run between
    /// steps; worker count never affects update results (each task touches
    /// one layer under its own lock), so a live resize is bit-invisible.
    pub fn set_workers(&mut self, workers: usize) {
        let target = workers.max(1);
        while self.workers < target {
            self.spawn_worker();
        }
        while self.workers > target {
            self.tx
                .as_ref()
                .expect("pool alive")
                .send(Task::Retire)
                .expect("optimizer pool channel closed");
            self.workers -= 1;
        }
    }

    /// Current actor-thread count (retiring workers are counted out as soon
    /// as their sentinel is enqueued).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Updates submitted but not yet applied — the pool's live backlog, as
    /// sampled by the autotuner at step boundaries.
    pub fn pending(&self) -> usize {
        *self.inflight.0.lock()
    }

    /// Submits an asynchronous update for `layer`. The caller must have
    /// called [`LayerStore::mark_pending`] when the gradients left the GPU.
    ///
    /// The gradients are copied into a buffer drawn from the pool's free
    /// list (refilled by workers as updates retire), so steady-state
    /// submission allocates nothing and the caller keeps its own buffer
    /// for reuse — the "D2H copy" of §III-E3 without a fresh staging
    /// vector per layer per step.
    pub fn submit(&self, layer: usize, grads: &[f32]) {
        self.submit_with(layer, grads, self.hp);
    }

    /// [`OptimizerPool::submit`] with explicit hyper-params for this one
    /// update — the hook through which the training engine drives a
    /// per-step [`crate::schedule::LrSchedule`] into the async actors.
    pub fn submit_with(&self, layer: usize, grads: &[f32], hp: AdamParams) {
        let mut buf = self.recycled_buffer();
        buf.extend_from_slice(grads);
        self.submit_owned(layer, buf, hp);
    }

    /// An empty gradient buffer drawn from the pool's free list (refilled by
    /// workers as updates retire). Fill it and hand it back through
    /// [`OptimizerPool::submit_owned`] — the offload thread flattens layer
    /// gradients *directly* into such a buffer, so a streamed update pays no
    /// copy beyond the flatten itself.
    pub fn recycled_buffer(&self) -> Vec<f32> {
        match self.recycle.lock().pop() {
            Some(mut buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns an unused buffer to the free list without submitting an
    /// update — for callers (e.g. a gradient sink) that drew more recycled
    /// buffers than they ended up dispatching.
    pub fn give_back(&self, mut buf: Vec<f32>) {
        buf.clear();
        let mut free = self.recycle.lock();
        if free.len() < MAX_RECYCLED {
            free.push(buf);
        }
    }

    /// How many [`OptimizerPool::recycled_buffer`] calls were satisfied from
    /// the free list instead of allocating — the zero-allocation suite
    /// asserts this climbs once the pipeline reaches steady state.
    pub fn buffer_reuses(&self) -> usize {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Submits an update whose gradient buffer the caller already owns
    /// (typically one from [`OptimizerPool::recycled_buffer`]); the buffer
    /// travels to the worker without another copy and returns to the free
    /// list when the update retires.
    pub fn submit_owned(&self, layer: usize, grads: Vec<f32>, hp: AdamParams) {
        assert_eq!(
            grads.len(),
            self.store.param_len(layer),
            "gradient length mismatch for layer {layer}"
        );
        {
            let (lock, _) = &*self.inflight;
            *lock.lock() += 1;
        }
        self.queue_depth.add(1);
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Task::Update(UpdateTask { layer, grads, hp }))
            .expect("optimizer pool channel closed");
    }

    /// Blocks until every submitted update has been applied.
    pub fn flush(&self) {
        let (lock, cv) = &*self.inflight;
        let mut n = lock.lock();
        while *n > 0 {
            cv.wait(&mut n);
        }
    }

    /// Total updates applied since creation.
    pub fn updates_applied(&self) -> usize {
        self.updates.load(Ordering::SeqCst)
    }
}

impl Drop for OptimizerPool {
    fn drop(&mut self) {
        self.flush();
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(layers: usize, n: usize) -> Arc<LayerStore> {
        LayerStore::new(
            (0..layers)
                .map(|l| (0..n).map(|i| (l * n + i) as f32 * 0.01).collect())
                .collect(),
        )
    }

    #[test]
    fn recycler_reuses_and_takes_buffers_back() {
        let store = store_with(1, 8);
        let pool = OptimizerPool::new(Arc::clone(&store), AdamParams::default(), 1);
        assert_eq!(pool.buffer_reuses(), 0);
        // Nothing retired yet: first draw allocates fresh.
        let buf = pool.recycled_buffer();
        assert_eq!(pool.buffer_reuses(), 0);
        // Returned buffers are drawn again (capacity preserved, contents
        // cleared) and counted as reuses.
        pool.give_back({
            let mut b = buf;
            b.extend_from_slice(&[1.0; 8]);
            b
        });
        let again = pool.recycled_buffer();
        assert!(again.is_empty());
        assert_eq!(pool.buffer_reuses(), 1);
        // Buffers retired by workers also land on the free list.
        store.mark_pending(0);
        pool.submit(0, &[0.5; 8]);
        pool.flush();
        let _ = pool.recycled_buffer();
        assert_eq!(pool.buffer_reuses(), 2);
    }

    #[test]
    fn pool_matches_sequential_adam_any_worker_count() {
        let hp = AdamParams::default();
        let grads: Vec<Vec<f32>> = (0..6)
            .map(|l| (0..32).map(|i| ((l + i) as f32).cos()).collect())
            .collect();

        // Sequential reference.
        let seq = store_with(6, 32);
        for (l, g) in grads.iter().enumerate() {
            seq.apply_update(l, g, &hp);
        }

        for workers in [1, 2, 4, 8] {
            let store = store_with(6, 32);
            let pool = OptimizerPool::new(Arc::clone(&store), hp, workers);
            for (l, g) in grads.iter().enumerate() {
                store.mark_pending(l);
                pool.submit(l, g);
            }
            pool.flush();
            for l in 0..6 {
                assert_eq!(
                    store.snapshot(l),
                    seq.snapshot(l),
                    "layer {l}, workers {workers}"
                );
            }
            assert_eq!(pool.updates_applied(), 6);
        }
    }

    #[test]
    fn read_params_waits_for_pending_update() {
        let store = store_with(1, 8);
        let hp = AdamParams::default();
        store.mark_pending(0);
        let store2 = Arc::clone(&store);
        let reader = std::thread::spawn(move || store2.read_params(0));
        // Give the reader time to block, then apply the update.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !reader.is_finished(),
            "reader should block on pending update"
        );
        store.apply_update(0, &[1.0; 8], &hp);
        let seen = reader.join().unwrap();
        assert_eq!(
            seen,
            store.snapshot(0),
            "reader must observe post-update params"
        );
    }

    #[test]
    fn many_updates_across_layers_complete() {
        let store = store_with(16, 64);
        let pool = OptimizerPool::new(Arc::clone(&store), AdamParams::default(), 4);
        for iter in 0..10 {
            for l in 0..16 {
                store.mark_pending(l);
                pool.submit(l, &vec![0.01 * (iter + 1) as f32; 64]);
            }
            pool.flush();
        }
        assert_eq!(pool.updates_applied(), 160);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn malformed_gradient_rejected_at_submit() {
        let store = store_with(2, 8);
        let pool = OptimizerPool::new(Arc::clone(&store), AdamParams::default(), 2);
        store.mark_pending(0);
        pool.submit(0, &[1.0; 5]); // wrong length: panics here, not in a worker
    }

    #[test]
    fn telemetry_counts_updates_and_latency() {
        let tel = Telemetry::enabled();
        let store = store_with(4, 32);
        let pool =
            OptimizerPool::with_telemetry(Arc::clone(&store), AdamParams::default(), 2, &tel);
        for l in 0..4 {
            store.mark_pending(l);
            pool.submit(l, &[0.5; 32]);
        }
        pool.flush();
        let h = tel.histogram("optim.update_ns");
        assert_eq!(h.count(), 4, "one latency sample per update");
        assert_eq!(tel.counter("optim.busy_ns").get(), h.sum());
        let depth = tel.gauge("optim.queue_depth");
        assert_eq!(depth.get(), 0, "queue drained");
        assert!(depth.peak() >= 1);
    }

    #[test]
    fn live_worker_resize_preserves_results() {
        let hp = AdamParams::default();
        let grads: Vec<Vec<f32>> = (0..8)
            .map(|l| (0..16).map(|i| ((l * 3 + i) as f32).sin()).collect())
            .collect();

        let seq = store_with(8, 16);
        for _ in 0..3 {
            for (l, g) in grads.iter().enumerate() {
                seq.apply_update(l, g, &hp);
            }
        }

        let store = store_with(8, 16);
        let mut pool = OptimizerPool::new(Arc::clone(&store), hp, 1);
        for round in 0..3 {
            for (l, g) in grads.iter().enumerate() {
                store.mark_pending(l);
                pool.submit(l, g);
            }
            pool.flush();
            // Resize between rounds: grow, then shrink back below start.
            pool.set_workers([4, 2, 1][round]);
            assert_eq!(pool.workers(), [4, 2, 1][round]);
        }
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.updates_applied(), 24);
        for l in 0..8 {
            assert_eq!(store.snapshot(l), seq.snapshot(l), "layer {l}");
        }
        // Shrink to zero clamps to one worker and the pool still works.
        pool.set_workers(0);
        assert_eq!(pool.workers(), 1);
        store.mark_pending(0);
        pool.submit(0, &grads[0]);
        pool.flush();
        assert_eq!(pool.updates_applied(), 25);
    }

    #[test]
    fn store_total_params() {
        let store = store_with(3, 10);
        assert_eq!(store.total_params(), 30);
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
    }
}
