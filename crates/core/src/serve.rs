//! Continuous-batching generation server on the windowed offload runtime.
//!
//! STRONGHOLD's §VI-D3 observation — FP-only mode serves models far larger
//! than the device could *train* — becomes a real workload here: the same
//! working-window machinery that streams layers H2D under training compute
//! streams them under *decode* compute, so a model whose parameter bytes
//! exceed the device arena generates tokens end-to-end.
//!
//! ## Device arena layout
//!
//! The device budget is carved into two regions, both accounted on the one
//! [`HostDevice`] so capacity violations are loud:
//!
//! * **`m+1` parameter slots** — exactly the training layout: the
//!   prefetcher stages layer `i+1..i+m` while the compute loop runs layer
//!   `i`, each staged layer holding `block_bytes` (half-width on the wire
//!   in bf16/f16 modes, via [`PackedHalf`] round-through).
//! * **The KV arena** — `slots × layers` per-sequence K/V caches of
//!   `2 · max_seq · hidden` f32 entries each, allocated once at engine
//!   construction and reused as sequences finish (admission = slot reuse,
//!   never an allocation).
//!
//! Given a fixed `device_capacity`, the window is derived from what remains
//! *after* the KV arena — the serving analogue of the training-side
//! `tune_limits`/`m_mem_max` bound: `m = ⌊(capacity − kv_bytes)/block_bytes⌋ − 1`.
//!
//! ## Scheduling
//!
//! [`ServeEngine::step`] runs one engine round: FIFO admission into free
//! slots, one layer-streamed pass over every active sequence (freshly
//! admitted sequences run their whole prompt — *prefill* — in the same
//! round in-flight sequences run their single pending token — *decode*),
//! then the tied LM head and per-request sampling. Parameter H2D overlaps
//! decode compute exactly as it overlaps training compute: the prefetcher
//! thread stages layer `i+1` while the compute loop walks every active
//! slot through layer `i`.
//!
//! ## Determinism
//!
//! Each sequence's math touches only its own KV cache, the shared streamed
//! weights, and its own seeded sampling RNG; every product runs through the
//! batch-stable GEMM entries and every softmax covers exactly the causal
//! prefix. Token streams are therefore bit-identical across window sizes,
//! slot counts, worker counts, arrival interleavings, and prefill/decode
//! splits — asserted by the integration suite.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use crossbeam_channel::bounded;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use stronghold_model::block::{Block, BlockDecodeScratch};
use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::{HeadDecodeScratch, Transformer};
use stronghold_tensor::attention::KvCache;
use stronghold_tensor::init::seeded_rng;
use stronghold_tensor::{PackedHalf, Precision, Tensor};

use crate::error::RuntimeError;
use crate::host::device::HostDevice;
use crate::host::engine::TrainingState;
use crate::telemetry::{Counter, Gauge, Histogram, Telemetry};

/// Configuration of a [`ServeEngine`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Working-window size `m` (staged parameter slots beyond the one being
    /// computed). Clamped to what `device_capacity` admits beside the KV
    /// arena.
    pub window: usize,
    /// Concurrent sequence slots (the KV arena's sequence capacity).
    pub slots: usize,
    /// Per-sequence token capacity; `0` means the model's trained context
    /// (`cfg.seq`). Clamped to the positional table.
    pub max_seq: usize,
    /// Compute threads fanning active slots within one layer. `1` keeps the
    /// whole round on the driver thread.
    pub compute_workers: usize,
    /// Device-side parameter precision: H2D payloads shrink to half width
    /// and the device computes on the half grid, exactly as in training.
    pub precision: Precision,
    /// Fixed device byte budget. `None` sizes the device to exactly the
    /// window plus the KV arena; `Some` derives the window from what the
    /// budget leaves beside the arena.
    pub device_capacity: Option<u64>,
    /// Sampling temperature; `0.0` is greedy argmax (lowest index wins
    /// ties). Positive values sample from the softmax-scaled distribution
    /// using each request's seeded RNG.
    pub temperature: f32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            window: 2,
            slots: 2,
            max_seq: 0,
            compute_workers: 1,
            precision: Precision::F32,
            device_capacity: None,
            temperature: 0.0,
        }
    }
}

/// One generation request.
#[derive(Clone, Debug)]
pub struct GenRequest {
    /// Caller-chosen request id, echoed in the result.
    pub id: u64,
    /// Prompt tokens (must be non-empty).
    pub prompt: Vec<u32>,
    /// Tokens to generate.
    pub max_new_tokens: usize,
    /// Seed for this request's sampling RNG (ignored under greedy).
    pub seed: u64,
}

/// A finished generation.
#[derive(Clone, Debug)]
pub struct GenResult {
    /// The request id.
    pub id: u64,
    /// Prompt length, for throughput accounting.
    pub prompt_len: usize,
    /// Generated tokens, in order.
    pub tokens: Vec<u32>,
    /// Nanoseconds from submission to the first generated token.
    pub ttft_ns: u64,
    /// Nanoseconds from submission to completion.
    pub latency_ns: u64,
    /// Engine rounds this request was active in.
    pub rounds: u64,
}

/// A request occupying a slot.
struct ActiveReq {
    id: u64,
    rng: ChaCha8Rng,
    max_new_tokens: usize,
    prompt_len: usize,
    generated: Vec<u32>,
    /// Tokens already in the KV caches (absolute position of `pending[0]`).
    pos: usize,
    /// Tokens to run this round: the prompt on the admission round
    /// (prefill), the last sampled token after (decode).
    pending: Vec<u32>,
    submit_ns: u64,
    ttft_ns: Option<u64>,
    rounds: u64,
}

/// One sequence slot: per-layer KV caches plus the per-slot compute
/// workspace, all preallocated so slot reuse never allocates.
struct Slot {
    kv: Vec<KvCache>,
    ws: BlockDecodeScratch,
    head_ws: HeadDecodeScratch,
    x: Tensor,
    y: Tensor,
    logits: Tensor,
    active: Option<ActiveReq>,
}

/// The continuous-batching generation engine.
pub struct ServeEngine {
    model: Transformer, // embedding + final LN; blocks live in `store`
    store: Vec<Vec<f32>>,
    shells: Vec<Block>,
    prefetch_stage: Vec<f32>,
    prefetch_pack: PackedHalf,
    device: Arc<HostDevice>,
    slots: Vec<Slot>,
    queue: VecDeque<GenRequest>,
    window: usize,
    block_bytes: u64,
    kv_bytes: u64,
    max_seq: usize,
    compute_workers: usize,
    precision: Precision,
    temperature: f32,
    tel: Telemetry,
    clock: Instant,
    c_requests: Counter,
    c_admitted: Counter,
    c_completed: Counter,
    c_tokens: Counter,
    c_prefill_tokens: Counter,
    c_decode_tokens: Counter,
    c_rounds: Counter,
    g_active: Gauge,
    g_queue: Gauge,
    h_round: Histogram,
    h_ttft: Histogram,
    h_latency: Histogram,
}

impl ServeEngine {
    /// Builds an engine over a freshly initialized model (tests, benches).
    pub fn new(mcfg: ModelConfig, seed: u64, cfg: ServeConfig) -> Self {
        Self::from_model(Transformer::new(mcfg, seed), cfg, Telemetry::disabled())
    }

    /// Builds an engine from a model, taking ownership of its blocks as the
    /// CPU-side layer store.
    pub fn from_model(mut model: Transformer, cfg: ServeConfig, tel: Telemetry) -> Self {
        let mcfg = model.cfg;
        let layers = mcfg.layers;
        assert!(layers > 0, "serve: model has no layers");
        assert!(cfg.slots > 0, "serve: need at least one slot");
        let max_seq = if cfg.max_seq == 0 {
            mcfg.seq
        } else {
            cfg.max_seq.min(mcfg.seq)
        };
        let block_bytes = mcfg.block_params() * cfg.precision.param_bytes();
        // KV entries stay f32 on the device: decode math runs on full-width
        // activations even when parameters travel half-width.
        let kv_bytes_per_cache = (2 * max_seq * mcfg.hidden * 4) as u64;
        let kv_bytes = cfg.slots as u64 * layers as u64 * kv_bytes_per_cache;
        // The serving analogue of `tune_limits`/`m_mem_max`: a fixed budget
        // admits the largest window that fits beside the KV arena.
        let window = match cfg.device_capacity {
            Some(cap) => {
                let m_max = (cap.saturating_sub(kv_bytes) / block_bytes).saturating_sub(1);
                cfg.window.min(m_max.max(1) as usize).clamp(1, layers)
            }
            None => cfg.window.clamp(1, layers),
        };
        let capacity = cfg
            .device_capacity
            .unwrap_or((window as u64 + 1) * block_bytes + kv_bytes);
        let device = Arc::new(HostDevice::with_telemetry(capacity, &tel));
        // The KV arena is carved out of the device pool up front and pinned
        // for the engine's lifetime; slot reuse rewinds caches in place.
        device.alloc(kv_bytes);

        let mut store = Vec::with_capacity(layers);
        let mut shells = Vec::with_capacity(window + 1);
        for b in model.blocks.drain(..) {
            store.push(b.flatten_params());
            if shells.len() < window + 1 {
                shells.push(b);
            }
        }
        while shells.len() < window + 1 {
            let src = shells[0].clone();
            shells.push(src);
        }

        let heads = mcfg.heads;
        let dh = mcfg.hidden / heads;
        let slots = (0..cfg.slots)
            .map(|_| Slot {
                kv: (0..layers)
                    .map(|_| KvCache::new(heads, dh, max_seq))
                    .collect(),
                ws: BlockDecodeScratch::new(),
                head_ws: HeadDecodeScratch::new(),
                x: Tensor::zeros([1]),
                y: Tensor::zeros([1]),
                logits: Tensor::zeros([1]),
                active: None,
            })
            .collect();

        tel.gauge("serve.kv_bytes").set(kv_bytes as i64);
        ServeEngine {
            model,
            store,
            shells,
            prefetch_stage: Vec::new(),
            prefetch_pack: PackedHalf::new(cfg.precision),
            device,
            slots,
            queue: VecDeque::new(),
            window,
            block_bytes,
            kv_bytes,
            max_seq,
            compute_workers: cfg.compute_workers.max(1),
            precision: cfg.precision,
            temperature: cfg.temperature,
            clock: Instant::now(),
            c_requests: tel.counter("serve.requests"),
            c_admitted: tel.counter("serve.admitted"),
            c_completed: tel.counter("serve.completed"),
            c_tokens: tel.counter("serve.tokens"),
            c_prefill_tokens: tel.counter("serve.prefill_tokens"),
            c_decode_tokens: tel.counter("serve.decode_tokens"),
            c_rounds: tel.counter("serve.rounds"),
            g_active: tel.gauge("serve.active_slots"),
            g_queue: tel.gauge("serve.queue_depth"),
            h_round: tel.histogram("serve.round_ns"),
            h_ttft: tel.histogram("serve.ttft_ns"),
            h_latency: tel.histogram("serve.request_latency_ns"),
            tel,
        }
    }

    /// Builds an engine from an SHTS training-state blob (the universal
    /// checkpoint every trainer writes): the FP32 masters become the layer
    /// store, optimizer moments are dropped. A trained blob serves directly.
    pub fn from_state_blob(
        blob: Bytes,
        cfg: ServeConfig,
        tel: Telemetry,
    ) -> Result<Self, RuntimeError> {
        let st = TrainingState::decode(blob)?;
        Ok(Self::from_model(st.model, cfg, tel))
    }

    /// Builds an engine from a model-only SHCK checkpoint blob.
    pub fn from_checkpoint_blob(
        blob: Bytes,
        cfg: ServeConfig,
        tel: Telemetry,
    ) -> Result<Self, RuntimeError> {
        let model = stronghold_model::serialize::load(blob)
            .map_err(|e| RuntimeError::Checkpoint(format!("model blob: {e}")))?;
        Ok(Self::from_model(model, cfg, tel))
    }

    /// The resolved working-window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Bytes pinned by the KV arena.
    pub fn kv_arena_bytes(&self) -> u64 {
        self.kv_bytes
    }

    /// Per-layer parameter bytes as staged on the device (half-width in
    /// bf16/f16 modes).
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Total parameter bytes of the served model at FP32 (the host-side
    /// store): when this exceeds [`HostDevice::capacity`], the engine is
    /// serving a model larger than the device arena.
    pub fn param_bytes(&self) -> u64 {
        self.store.iter().map(|l| l.len() as u64 * 4).sum::<u64>()
            + self.model.embedding.param_count() as u64 * 4
            + (self.model.lnf_g.numel() + self.model.lnf_b.numel()) as u64 * 4
    }

    /// The capacity-accounted device.
    pub fn device(&self) -> &HostDevice {
        &self.device
    }

    /// The engine's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Sequences currently holding a slot.
    pub fn active_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.active.is_some()).count()
    }

    /// Requests waiting for a slot.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a request (FIFO admission at the next round boundary).
    ///
    /// # Panics
    /// Panics if the prompt is empty or `prompt + max_new_tokens` cannot
    /// fit the per-sequence token capacity.
    pub fn submit(&mut self, req: GenRequest) {
        assert!(!req.prompt.is_empty(), "serve: empty prompt");
        assert!(req.max_new_tokens > 0, "serve: zero tokens requested");
        assert!(
            req.prompt.len() + req.max_new_tokens <= self.max_seq,
            "serve: request needs {} tokens, slot capacity is {}",
            req.prompt.len() + req.max_new_tokens,
            self.max_seq
        );
        self.c_requests.incr();
        self.queue.push_back(req);
        self.g_queue.set(self.queue.len() as i64);
    }

    /// Submits a batch and runs rounds until every request finishes.
    /// Results are returned in completion order.
    pub fn generate(&mut self, reqs: Vec<GenRequest>) -> Vec<GenResult> {
        for r in reqs {
            self.submit(r);
        }
        let mut out = Vec::new();
        loop {
            let done = self.step();
            out.extend(done);
            if self.queue.is_empty() && self.active_slots() == 0 {
                return out;
            }
        }
    }

    /// FIFO admission: pops queued requests into free slots. The freshly
    /// admitted request's whole prompt becomes its pending token run, so
    /// its prefill rides the same layer stream as everyone else's decode.
    fn admit(&mut self) {
        let now = self.now_ns();
        for slot in self.slots.iter_mut() {
            if slot.active.is_some() {
                continue;
            }
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            for kv in slot.kv.iter_mut() {
                kv.clear();
            }
            let prompt_len = req.prompt.len();
            slot.active = Some(ActiveReq {
                id: req.id,
                rng: seeded_rng(req.seed),
                max_new_tokens: req.max_new_tokens,
                prompt_len,
                generated: Vec::with_capacity(req.max_new_tokens),
                pos: 0,
                pending: req.prompt,
                submit_ns: now,
                ttft_ns: None,
                rounds: 0,
            });
            self.c_admitted.incr();
        }
        self.g_queue.set(self.queue.len() as i64);
        self.g_active.set(self.active_slots() as i64);
    }

    fn now_ns(&self) -> u64 {
        self.clock.elapsed().as_nanos() as u64
    }

    /// Runs one engine round; returns the requests that finished in it.
    ///
    /// A round is: admission → embed every active slot's pending tokens →
    /// one streamed pass over all layers (prefetcher thread staging H2D
    /// ahead of compute, `m+1` shells circulating through the device
    /// budget) → last-token logits → one sampled token per active slot.
    pub fn step(&mut self) -> Vec<GenResult> {
        self.admit();
        let t_round = Instant::now();
        let nb = self.store.len();
        let mut finished = Vec::new();
        if self.active_slots() == 0 {
            return finished;
        }
        self.c_rounds.incr();

        // Embed each active slot's pending run at its absolute position.
        let mut prefill_tokens = 0u64;
        let mut decode_tokens = 0u64;
        for slot in self.slots.iter_mut() {
            let Some(req) = slot.active.as_mut() else {
                continue;
            };
            self.model.embed_at_into(&req.pending, req.pos, &mut slot.x);
            req.rounds += 1;
            if req.pos == 0 {
                prefill_tokens += req.pending.len() as u64;
            } else {
                decode_tokens += req.pending.len() as u64;
            }
        }
        self.c_prefill_tokens.add(prefill_tokens);
        self.c_decode_tokens.add(decode_tokens);

        // ---- one layer-streamed pass over every active sequence ----
        let m = self.window;
        let bb = self.block_bytes;
        let cw = self.compute_workers;
        let precision = self.precision;
        let device = Arc::clone(&self.device);
        let tel = self.tel.clone();
        let store = &self.store;
        let stage = &mut self.prefetch_stage;
        let pack = &mut self.prefetch_pack;
        let shells = &mut self.shells;
        let slots = &mut self.slots;
        let (fp_tx, fp_rx) = bounded::<(usize, Block)>(m);
        let (free_tx, free_rx) = bounded::<Block>(m + 1);
        for sh in shells.drain(..) {
            free_tx.send(sh).expect("seed free shells");
        }

        std::thread::scope(|scope| {
            // Prefetcher: identical shape to the training H2D engine —
            // recv a free shell, stage the layer (rounding through the
            // half-width payload when configured), account the copy.
            let device_pf = Arc::clone(&device);
            let free_rx_pf = free_rx.clone();
            let tel_pf = tel.clone();
            scope.spawn(move || {
                for (i, flat) in store.iter().enumerate() {
                    let Ok(mut shell) = free_rx_pf.recv() else {
                        return;
                    };
                    let span = tel_pf.span("h2d-copy", format!("h2d L{i}"));
                    device_pf.begin_h2d();
                    stage.clear();
                    stage.extend_from_slice(flat);
                    device_pf.alloc(bb);
                    let h2d_bytes = if precision.is_half() {
                        pack.round_through(stage);
                        pack.nbytes()
                    } else {
                        (stage.len() * 4) as u64
                    };
                    shell.load_flat_params(stage);
                    device_pf.end_h2d(h2d_bytes);
                    span.end();
                    if fp_tx.send((i, shell)).is_err() {
                        return;
                    }
                }
            });

            // Compute: walk every active slot through each layer as it
            // lands, then release the shell back to the window. Slots are
            // independent (own KV, own workspace), so fanning them across
            // threads cannot change any slot's bits.
            let mut active: Vec<&mut Slot> =
                slots.iter_mut().filter(|s| s.active.is_some()).collect();
            while let Ok((i, block)) = fp_rx.recv() {
                let span = tel.span("serve-compute", format!("L{i}"));
                if cw > 1 && active.len() > 1 {
                    let per = active.len().div_ceil(cw);
                    std::thread::scope(|cs| {
                        for chunk in active.chunks_mut(per) {
                            let block = &block;
                            cs.spawn(move || {
                                for slot in chunk.iter_mut() {
                                    block.forward_decode(
                                        &slot.x,
                                        &mut slot.kv[i],
                                        &mut slot.ws,
                                        &mut slot.y,
                                    );
                                    std::mem::swap(&mut slot.x, &mut slot.y);
                                }
                            });
                        }
                    });
                } else {
                    for slot in active.iter_mut() {
                        block.forward_decode(&slot.x, &mut slot.kv[i], &mut slot.ws, &mut slot.y);
                        std::mem::swap(&mut slot.x, &mut slot.y);
                    }
                }
                span.end();
                device.free(bb);
                free_tx.send(block).expect("return shell");
            }
        });
        drop(free_tx);
        while let Ok(sh) = free_rx.try_recv() {
            self.shells.push(sh);
        }
        debug_assert_eq!(self.shells.len(), m + 1, "window shells must all return");
        let _ = nb;

        // ---- head + sampling + completion ----
        let now = self.now_ns();
        let temperature = self.temperature;
        for slot in self.slots.iter_mut() {
            let Some(req) = slot.active.as_mut() else {
                continue;
            };
            self.model
                .lm_logits_last_into(&slot.x, &mut slot.head_ws, &mut slot.logits);
            let tok = sample(slot.logits.data(), temperature, &mut req.rng);
            req.pos += req.pending.len();
            req.generated.push(tok);
            self.c_tokens.incr();
            if req.ttft_ns.is_none() {
                req.ttft_ns = Some(now.saturating_sub(req.submit_ns));
                self.h_ttft.record(now.saturating_sub(req.submit_ns));
            }
            let done = req.generated.len() >= req.max_new_tokens || req.pos >= self.max_seq;
            if done {
                let req = slot.active.take().expect("active request");
                self.c_completed.incr();
                let latency = now.saturating_sub(req.submit_ns);
                self.h_latency.record(latency);
                finished.push(GenResult {
                    id: req.id,
                    prompt_len: req.prompt_len,
                    tokens: req.generated,
                    ttft_ns: req.ttft_ns.unwrap_or(latency),
                    latency_ns: latency,
                    rounds: req.rounds,
                });
            } else {
                req.pending.clear();
                req.pending.push(tok);
            }
        }
        self.g_active.set(self.active_slots() as i64);
        self.h_round.record(t_round.elapsed().as_nanos() as u64);
        finished
    }
}

/// Samples one token from a logits row: greedy argmax at `temperature <= 0`
/// (lowest index wins ties), otherwise softmax-scaled CDF inversion driven
/// by the request's own RNG. Allocation-free. Public so baselines sample
/// through the exact same decision function.
pub fn sample(logits: &[f32], temperature: f32, rng: &mut ChaCha8Rng) -> u32 {
    if temperature <= 0.0 {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in logits.iter().enumerate() {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        return best as u32;
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let sum: f32 = logits
        .iter()
        .map(|&v| ((v - max) / temperature).exp())
        .sum();
    let u: f32 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0f32;
    for (i, &v) in logits.iter().enumerate() {
        acc += ((v - max) / temperature).exp() / sum;
        if u < acc {
            return i as u32;
        }
    }
    (logits.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::tiny;

    fn reqs(n: u64, prompt_len: usize, new_tokens: usize) -> Vec<GenRequest> {
        (0..n)
            .map(|i| GenRequest {
                id: i,
                prompt: (0..prompt_len as u32)
                    .map(|t| (t * 7 + i as u32) % 64)
                    .collect(),
                max_new_tokens: new_tokens,
                seed: 100 + i,
            })
            .collect()
    }

    #[test]
    fn serves_and_completes_fifo() {
        let mut eng = ServeEngine::new(tiny(3), 9, ServeConfig::default());
        let out = eng.generate(reqs(5, 4, 3));
        assert_eq!(out.len(), 5);
        for r in &out {
            assert_eq!(r.tokens.len(), 3);
            assert!(r.latency_ns >= r.ttft_ns);
        }
        assert_eq!(eng.active_slots(), 0);
        assert_eq!(eng.queue_depth(), 0);
    }

    #[test]
    fn device_peak_stays_within_arena_budget() {
        let mcfg = tiny(4);
        let mut eng = ServeEngine::new(
            mcfg,
            9,
            ServeConfig {
                window: 1,
                slots: 2,
                ..ServeConfig::default()
            },
        );
        let cap = eng.device().capacity();
        // The model itself cannot fit: only 2 of 4 layers are staged.
        assert!(eng.param_bytes() > cap, "model must exceed the arena");
        let out = eng.generate(reqs(3, 3, 4));
        assert_eq!(out.len(), 3);
        assert!(eng.device().peak() <= cap, "device over budget");
        // Steady state: only the pinned KV arena remains allocated.
        assert_eq!(eng.device().used(), eng.kv_arena_bytes());
    }

    #[test]
    fn capacity_budget_derives_window_beside_kv_arena() {
        let mcfg = tiny(4);
        let bb = mcfg.block_params() as u64 * 4;
        // Budget for the KV arena plus exactly 3 parameter slots => m = 2.
        let probe = ServeEngine::new(mcfg, 9, ServeConfig::default());
        let kv = probe.kv_arena_bytes();
        let eng = ServeEngine::new(
            mcfg,
            9,
            ServeConfig {
                window: 4,
                device_capacity: Some(kv + 3 * bb + bb / 2),
                ..ServeConfig::default()
            },
        );
        assert_eq!(eng.window(), 2, "window must be derived from the budget");
    }

    #[test]
    fn temperature_sampling_is_seed_deterministic() {
        let cfg = ServeConfig {
            temperature: 0.8,
            ..ServeConfig::default()
        };
        let mut a = ServeEngine::new(tiny(2), 9, cfg.clone());
        let mut b = ServeEngine::new(tiny(2), 9, cfg);
        let ta = a.generate(reqs(2, 3, 5));
        let tb = b.generate(reqs(2, 3, 5));
        for (x, y) in ta.iter().zip(tb.iter()) {
            assert_eq!(x.tokens, y.tokens, "same seed must sample same stream");
        }
    }

    #[test]
    #[should_panic(expected = "slot capacity")]
    fn oversized_request_rejected() {
        let mut eng = ServeEngine::new(tiny(2), 9, ServeConfig::default());
        eng.submit(GenRequest {
            id: 0,
            prompt: vec![1; 14],
            max_new_tokens: 14,
            seed: 0,
        });
    }
}
