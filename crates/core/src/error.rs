//! Runtime error types.

use stronghold_sim::OomError;

/// Errors produced by the STRONGHOLD runtime and the baseline schedulers.
#[derive(Debug, Clone)]
pub enum RuntimeError {
    /// A memory space exceeded its capacity.
    Oom(OomError),
    /// The model cannot run under this method on this platform even with the
    /// smallest configuration the method supports (e.g. window of one layer).
    Infeasible {
        /// Method name.
        method: String,
        /// Why the configuration cannot run.
        reason: String,
    },
    /// Invalid configuration handed to the runtime.
    Config(String),
    /// A training-state blob could not be restored: unknown format version,
    /// truncated or oversized payload, or a model/optimizer shape that does
    /// not match the configuration the trainer was asked to resume with.
    Checkpoint(String),
}

impl From<OomError> for RuntimeError {
    fn from(e: OomError) -> Self {
        RuntimeError::Oom(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Oom(e) => write!(f, "{e}"),
            RuntimeError::Infeasible { method, reason } => {
                write!(f, "{method}: infeasible: {reason}")
            }
            RuntimeError::Config(msg) => write!(f, "configuration error: {msg}"),
            RuntimeError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_sim::SimTime;

    #[test]
    fn display_formats() {
        let e = RuntimeError::Oom(OomError {
            space: "gpu".into(),
            peak: 40 << 30,
            capacity: 32 << 30,
            at: SimTime::ZERO,
        });
        assert!(e.to_string().contains("out of memory"));
        let e = RuntimeError::Infeasible {
            method: "l2l".into(),
            reason: "optimizer state exceeds device".into(),
        };
        assert!(e.to_string().contains("infeasible"));
    }
}
