//! Adam optimizer (Kingma & Ba) over flat parameter vectors.
//!
//! Each DNN layer owns one [`AdamState`]; the concurrent optimizer pool
//! (§III-E1) runs many of these in parallel, one per layer, which is safe and
//! exactly order-independent because states never alias across layers.

use serde::{Deserialize, Serialize};

/// Adam hyper-parameters (paper §V-B: hyper-parameters follow Megatron-LM /
/// ZeRO-Offload defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdamParams {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style).
    pub weight_decay: f32,
}

impl Default for AdamParams {
    fn default() -> Self {
        AdamParams {
            lr: 1.5e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
        }
    }
}

/// Optimizer state for one parameter group (one layer).
#[derive(Clone, Debug)]
pub struct AdamState {
    /// First moment (momentum).
    pub m: Vec<f32>,
    /// Second moment (variance).
    pub v: Vec<f32>,
    /// Step counter.
    pub t: u64,
}

impl AdamState {
    /// Zero state for `n` parameters.
    pub fn new(n: usize) -> Self {
        AdamState {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Bytes of optimizer state held (8 per parameter, as the paper's
    /// accounting assumes).
    pub fn nbytes(&self) -> usize {
        (self.m.len() + self.v.len()) * 4
    }

    /// Applies one Adam step: updates `params` in place from `grads`.
    ///
    /// The bias-corrected learning rate is computed here in `f64` (as the
    /// scalar implementation always did); the per-element moment and
    /// parameter updates run on the vectorized fused kernel.
    ///
    /// # Panics
    /// Panics if lengths mismatch.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], hp: &AdamParams) {
        assert_eq!(params.len(), grads.len(), "adam: params vs grads");
        assert_eq!(params.len(), self.m.len(), "adam: params vs state");
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - (hp.beta1 as f64).powf(t);
        let bc2 = 1.0 - (hp.beta2 as f64).powf(t);
        let lr_t = hp.lr as f64 * bc2.sqrt() / bc1;
        let lr_t = lr_t as f32;
        stronghold_tensor::ops::adam_fused(
            params,
            grads,
            &mut self.m,
            &mut self.v,
            hp.beta1,
            hp.beta2,
            lr_t,
            hp.lr * hp.weight_decay,
            hp.eps,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp() -> AdamParams {
        AdamParams {
            weight_decay: 0.0,
            ..AdamParams::default()
        }
    }

    #[test]
    fn descends_a_quadratic() {
        // Minimize f(x) = x² starting at 3.
        let mut x = vec![3.0f32];
        let mut st = AdamState::new(1);
        let hp = AdamParams { lr: 0.1, ..hp() };
        for _ in 0..300 {
            let g = vec![2.0 * x[0]];
            st.step(&mut x, &g, &hp);
        }
        assert!(x[0].abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // Adam's bias-corrected first step moves by ~lr regardless of |g|.
        for g0 in [0.001f32, 1.0, 1000.0] {
            let mut x = vec![0.0f32];
            let mut st = AdamState::new(1);
            let p = AdamParams { lr: 0.01, ..hp() };
            st.step(&mut x, &[g0], &p);
            assert!((x[0].abs() - 0.01).abs() < 1e-3, "g0 {g0} -> step {}", x[0]);
        }
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut x = vec![1.0f32];
        let mut st = AdamState::new(1);
        let p = AdamParams {
            lr: 0.0,
            weight_decay: 0.0,
            ..AdamParams::default()
        };
        let mut x2 = x.clone();
        let mut st2 = AdamState::new(1);
        let p2 = AdamParams {
            lr: 0.1,
            weight_decay: 0.5,
            ..AdamParams::default()
        };
        st.step(&mut x, &[0.0], &p);
        st2.step(&mut x2, &[0.0], &p2);
        assert_eq!(x[0], 1.0);
        assert!(x2[0] < 1.0);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut x: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
            let mut st = AdamState::new(64);
            for k in 0..10 {
                let g: Vec<f32> = x.iter().map(|v| v * 0.1 + k as f32 * 0.01).collect();
                st.step(&mut x, &g, &AdamParams::default());
            }
            x
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "params vs grads")]
    fn length_mismatch_panics() {
        let mut st = AdamState::new(2);
        let mut p = vec![0.0; 2];
        st.step(&mut p, &[1.0], &AdamParams::default());
    }

    #[test]
    fn state_bytes() {
        let st = AdamState::new(100);
        assert_eq!(st.nbytes(), 800);
    }
}
