//! Preprocessing: tensor-graph extraction and the offloading sequence
//! (§III-B).
//!
//! At model-load time STRONGHOLD walks the tensor graph to recover the layer
//! execution order and per-layer storage sizes. Sequential Transformer
//! stacks yield a static order; architectures with residual branches or
//! gating (mixture-of-experts) have *dynamic* execution paths, for which the
//! runtime either (a) prefetches **all** units directly connected to a
//! branch when the window has room, or (b) **delays** the movement until the
//! taken branch is known — both policies implemented here exactly as the
//! paper describes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A node in the (simplified) tensor graph.
#[derive(Clone, Debug)]
pub struct GraphNode {
    /// Node id.
    pub id: usize,
    /// Human-readable label.
    pub label: String,
    /// Model-state bytes this unit carries.
    pub state_bytes: u64,
    /// Successor node ids. More than one successor with `gated = true`
    /// means only one of them executes at runtime (MoE routing).
    pub next: Vec<usize>,
    /// Whether the fan-out is a data-dependent gate (vs. a residual split
    /// where *all* successors execute).
    pub gated: bool,
}

/// The extracted tensor graph.
#[derive(Clone, Debug, Default)]
pub struct TensorGraph {
    nodes: BTreeMap<usize, GraphNode>,
    entry: Option<usize>,
}

/// How a layer should be prefetched (the §III-B policy decision).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// Static successor: prefetch as usual, one layer ahead of the window.
    Static,
    /// Branch target with room in the window: prefetch every candidate.
    FetchAllCandidates,
    /// Branch target without room: delay movement until the gate resolves.
    DelayUntilKnown,
}

/// One entry of the offloading sequence the preprocessor emits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OffloadStep {
    /// Node id.
    pub node: usize,
    /// Prefetch policy for reaching this node.
    pub policy: PrefetchPolicy,
    /// Candidate set (singleton for static steps).
    pub candidates: Vec<usize>,
}

impl TensorGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TensorGraph::default()
    }

    /// Adds a node; the first added node becomes the entry.
    pub fn add_node(&mut self, label: impl Into<String>, state_bytes: u64) -> usize {
        let id = self.nodes.len();
        self.nodes.insert(
            id,
            GraphNode {
                id,
                label: label.into(),
                state_bytes,
                next: Vec::new(),
                gated: false,
            },
        );
        if self.entry.is_none() {
            self.entry = Some(id);
        }
        id
    }

    /// Adds an edge `from → to`.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.nodes.get_mut(&from).expect("from node").next.push(to);
    }

    /// Marks a node's fan-out as a data-dependent gate (MoE routing).
    pub fn mark_gated(&mut self, node: usize) {
        self.nodes.get_mut(&node).expect("node").gated = true;
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node by id.
    pub fn node(&self, id: usize) -> &GraphNode {
        &self.nodes[&id]
    }

    /// True if every node has at most one successor (a plain stack, the
    /// common Transformer case the paper calls "static relationship").
    pub fn is_sequential(&self) -> bool {
        self.nodes.values().all(|n| n.next.len() <= 1)
    }

    /// Breadth-first execution order over the *static* structure: for
    /// residual splits all branches appear; for gates all candidates appear
    /// (the runtime narrows at execution time). Deterministic: successors
    /// visit in insertion order.
    pub fn execution_order(&self) -> Vec<usize> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        let mut seen = BTreeSet::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::from([entry]);
        while let Some(id) = queue.pop_front() {
            if !seen.insert(id) {
                continue;
            }
            order.push(id);
            for &n in &self.nodes[&id].next {
                if !seen.contains(&n) {
                    queue.push_back(n);
                }
            }
        }
        order
    }

    /// Emits the offloading sequence with per-step prefetch policies.
    ///
    /// `window_free_bytes` is the device headroom the preprocessor may spend
    /// on speculative candidates: when all of a gate's candidates fit, the
    /// runtime fetches them all (avoiding a stall whichever way the gate
    /// routes); otherwise it delays until the gate resolves, accepting the
    /// stall to avoid OOM — the exact trade-off of §III-B.
    pub fn offload_sequence(&self, window_free_bytes: u64) -> Vec<OffloadStep> {
        let mut steps = Vec::new();
        for id in self.execution_order() {
            let preds: Vec<&GraphNode> = self
                .nodes
                .values()
                .filter(|n| n.next.contains(&id))
                .collect();
            let gated_pred = preds.iter().find(|p| p.gated && p.next.len() > 1);
            let (policy, candidates) = match gated_pred {
                None => (PrefetchPolicy::Static, vec![id]),
                Some(p) => {
                    let total: u64 = p.next.iter().map(|c| self.nodes[c].state_bytes).sum();
                    if total <= window_free_bytes {
                        (PrefetchPolicy::FetchAllCandidates, p.next.clone())
                    } else {
                        (PrefetchPolicy::DelayUntilKnown, p.next.clone())
                    }
                }
            };
            steps.push(OffloadStep {
                node: id,
                policy,
                candidates,
            });
        }
        steps
    }

    /// Builds the graph of a plain `n`-block Transformer stack
    /// (embedding → blocks → head).
    pub fn sequential_stack(n: usize, block_bytes: u64) -> Self {
        let mut g = TensorGraph::new();
        let emb = g.add_node("embedding", block_bytes / 4);
        let mut prev = emb;
        for i in 0..n {
            let b = g.add_node(format!("block{i}"), block_bytes);
            g.add_edge(prev, b);
            prev = b;
        }
        let head = g.add_node("head", block_bytes / 8);
        g.add_edge(prev, head);
        g
    }

    /// Builds a mixture-of-experts style graph: a router gating over
    /// `experts` parallel expert blocks, merging into a shared output block.
    pub fn moe_block(experts: usize, expert_bytes: u64) -> Self {
        let mut g = TensorGraph::new();
        let router = g.add_node("router", 1024);
        let merge = g.add_node("merge", 1024);
        for e in 0..experts {
            let x = g.add_node(format!("expert{e}"), expert_bytes);
            g.add_edge(router, x);
            g.add_edge(x, merge);
        }
        g.mark_gated(router);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stack_order_is_linear() {
        let g = TensorGraph::sequential_stack(4, 1000);
        assert!(g.is_sequential());
        assert_eq!(g.execution_order(), vec![0, 1, 2, 3, 4, 5]);
        let steps = g.offload_sequence(10_000);
        assert!(steps.iter().all(|s| s.policy == PrefetchPolicy::Static));
        assert_eq!(steps.len(), 6);
    }

    #[test]
    fn moe_graph_is_not_sequential() {
        let g = TensorGraph::moe_block(4, 5000);
        assert!(!g.is_sequential());
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn roomy_window_prefetches_all_experts() {
        let g = TensorGraph::moe_block(3, 1000);
        let steps = g.offload_sequence(10_000); // 3 experts x 1000 fit
        let expert_steps: Vec<_> = steps
            .iter()
            .filter(|s| g.node(s.node).label.starts_with("expert"))
            .collect();
        assert_eq!(expert_steps.len(), 3);
        for s in expert_steps {
            assert_eq!(s.policy, PrefetchPolicy::FetchAllCandidates);
            assert_eq!(s.candidates.len(), 3, "all gate candidates prefetched");
        }
    }

    #[test]
    fn tight_window_delays_until_gate_resolves() {
        let g = TensorGraph::moe_block(3, 1000);
        let steps = g.offload_sequence(2_500); // only 2.5 experts fit
        for s in steps
            .iter()
            .filter(|s| g.node(s.node).label.starts_with("expert"))
        {
            assert_eq!(s.policy, PrefetchPolicy::DelayUntilKnown);
        }
    }

    #[test]
    fn residual_split_is_not_gated() {
        // A residual fan-out executes both branches: no speculation needed.
        let mut g = TensorGraph::new();
        let a = g.add_node("a", 10);
        let b = g.add_node("b", 10);
        let c = g.add_node("c", 10);
        let d = g.add_node("d", 10);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let steps = g.offload_sequence(5);
        assert!(steps.iter().all(|s| s.policy == PrefetchPolicy::Static));
        assert_eq!(g.execution_order(), vec![a, b, c, d]);
    }

    #[test]
    fn execution_order_deterministic() {
        let g = TensorGraph::moe_block(5, 100);
        assert_eq!(g.execution_order(), g.execution_order());
    }

    #[test]
    fn empty_graph() {
        let g = TensorGraph::new();
        assert!(g.is_empty());
        assert!(g.execution_order().is_empty());
        assert!(g.offload_sequence(100).is_empty());
    }
}
