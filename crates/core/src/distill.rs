//! Knowledge distillation (§VI-D3): a large *offloaded* teacher guides a
//! small resident student.
//!
//! The teacher only ever runs forward passes through the working window —
//! no gradients, no optimizer state — so STRONGHOLD can serve a teacher far
//! beyond device memory (Fig. 13); the student trains against the teacher's
//! layer-wise hidden states, which generic inference engines (TensorRT) do
//! not expose.

use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::Transformer;
use stronghold_tensor::ops::axpy;
use stronghold_tensor::Tensor;

use crate::adam::{AdamParams, AdamState};
use crate::host::{HostOffloadConfig, HostOffloadTrainer};

/// Mean-squared error between two equal-shaped tensors and its gradient
/// w.r.t. `pred`.
pub fn mse_and_grad(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert!(pred.shape().same(target.shape()), "mse: shape mismatch");
    let n = pred.numel() as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0f32;
    for (g, t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Teacher–student distillation over hidden states.
pub struct Distiller {
    /// The offloaded teacher (FP-only usage).
    pub teacher: HostOffloadTrainer,
    /// The resident student.
    pub student: Transformer,
    /// For each student block, the teacher hidden-state index it matches.
    pub layer_map: Vec<usize>,
    adams: Vec<AdamState>,
    hp: AdamParams,
}

impl Distiller {
    /// Builds a teacher/student pair. The student's blocks are mapped
    /// uniformly onto the teacher's depth (block `i` of `s` matches teacher
    /// state `⌈(i+1)·t/s⌉`), the standard layer-mapping heuristic.
    ///
    /// # Panics
    /// Panics unless hidden sizes match (hidden-state distillation needs a
    /// shared width) and the student is no deeper than the teacher.
    pub fn new(
        teacher_cfg: ModelConfig,
        student_cfg: ModelConfig,
        teacher_seed: u64,
        student_seed: u64,
        window: usize,
        hp: AdamParams,
    ) -> Self {
        assert_eq!(
            teacher_cfg.hidden, student_cfg.hidden,
            "hidden sizes must match for hidden-state distillation"
        );
        assert!(student_cfg.layers <= teacher_cfg.layers);
        let teacher = HostOffloadTrainer::new(
            teacher_cfg,
            teacher_seed,
            HostOffloadConfig {
                window,
                ..HostOffloadConfig::default()
            },
        );
        let student = Transformer::new(student_cfg, student_seed);
        let s = student_cfg.layers;
        let t = teacher_cfg.layers;
        let layer_map = (0..s).map(|i| ((i + 1) * t).div_ceil(s)).collect();
        let adams = student
            .blocks
            .iter()
            .map(|b| AdamState::new(b.param_count()))
            .collect();
        Distiller {
            teacher,
            student,
            layer_map,
            adams,
            hp,
        }
    }

    /// One distillation step on one token sequence; returns the summed
    /// hidden-state MSE across mapped layers.
    pub fn step(&mut self, tokens: &[u32]) -> f32 {
        let t_states = self.teacher.hidden_states(tokens);

        // Student forward, capturing per-block outputs and caches.
        let x0 = self.student.embed(tokens);
        let mut activations = vec![x0.clone()];
        let mut caches = Vec::with_capacity(self.student.blocks.len());
        for b in &self.student.blocks {
            let (y, c) = b.forward(activations.last().expect("input"));
            activations.push(y);
            caches.push(c);
        }

        // Losses and upstream gradients per mapped layer.
        let mut total = 0.0f32;
        let mut dys: Vec<Tensor> = Vec::with_capacity(self.student.blocks.len());
        for (i, &t_idx) in self.layer_map.iter().enumerate() {
            let (l, g) = mse_and_grad(&activations[i + 1], &t_states[t_idx]);
            total += l;
            dys.push(g);
        }

        // Backward through the student, accumulating the per-layer loss
        // gradients as they join the chain.
        let mut grads: Vec<_> = self.student.blocks.iter().map(|b| b.zero_grads()).collect();
        let mut dy = dys.pop().expect("at least one block");
        for i in (0..self.student.blocks.len()).rev() {
            let dx =
                self.student.blocks[i].backward(&dy, &activations[i], &caches[i], &mut grads[i]);
            dy = dx;
            if let Some(g) = dys.pop() {
                axpy(&mut dy, 1.0, &g);
            }
        }

        // Adam on every student block.
        for (i, g) in grads.iter().enumerate() {
            let mut flat = self.student.blocks[i].flatten_params();
            self.adams[i].step(&mut flat, &g.flatten(), &self.hp);
            self.student.blocks[i].load_flat_params(&flat);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::tiny;
    use stronghold_model::data::SyntheticCorpus;
    use stronghold_tensor::init::{normal, seeded_rng};

    #[test]
    fn mse_grad_matches_finite_difference() {
        let mut rng = seeded_rng(5);
        let pred = normal([3, 4], 1.0, &mut rng);
        let target = normal([3, 4], 1.0, &mut rng);
        let (_, grad) = mse_and_grad(&pred, &target);
        let eps = 1e-3;
        for i in 0..pred.numel() {
            let mut p = pred.clone();
            p.data_mut()[i] += eps;
            let (lp, _) = mse_and_grad(&p, &target);
            let mut m = pred.clone();
            m.data_mut()[i] -= eps;
            let (lm, _) = mse_and_grad(&m, &target);
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "i {i}");
        }
    }

    #[test]
    fn layer_map_is_uniform_and_in_range() {
        let d = Distiller::new(tiny(8), tiny(2), 1, 2, 2, AdamParams::default());
        assert_eq!(d.layer_map, vec![4, 8]);
        let d = Distiller::new(tiny(9), tiny(3), 1, 2, 2, AdamParams::default());
        assert_eq!(d.layer_map, vec![3, 6, 9]);
    }

    #[test]
    fn distillation_reduces_loss() {
        let tcfg = tiny(6);
        let scfg = tiny(2);
        let mut d = Distiller::new(
            tcfg,
            scfg,
            7,
            8,
            2,
            AdamParams {
                lr: 5e-3,
                ..AdamParams::default()
            },
        );
        let mut corpus = SyntheticCorpus::new(tcfg.vocab, 4);
        let (tokens, _) = corpus.next_sample(tcfg.seq - 1);
        let first = d.step(&tokens);
        let mut last = first;
        for _ in 0..25 {
            last = d.step(&tokens);
        }
        assert!(last < first * 0.5, "distillation loss {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "hidden sizes must match")]
    fn hidden_mismatch_rejected() {
        let mut scfg = tiny(2);
        scfg.hidden = 64;
        let _ = Distiller::new(tiny(4), scfg, 1, 2, 2, AdamParams::default());
    }
}
