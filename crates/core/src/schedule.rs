//! Learning-rate schedules.
//!
//! The paper trains with Megatron-LM / ZeRO-Offload hyper-parameters
//! (§V-B), which pair Adam with linear warm-up followed by cosine (or
//! linear) decay and a floor. These schedules drive the examples and give
//! the fine-tuning scenarios realistic optimizer behaviour.

/// A learning-rate schedule: step number → learning rate.
#[derive(Clone, Copy, Debug)]
pub enum LrSchedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warm-up to `peak` over `warmup` steps, then cosine decay to
    /// `floor` at `total` steps (Megatron's default).
    CosineWithWarmup {
        /// Peak learning rate after warm-up.
        peak: f32,
        /// Final floor rate.
        floor: f32,
        /// Warm-up steps.
        warmup: u64,
        /// Total decay horizon.
        total: u64,
    },
    /// Linear warm-up then linear decay to `floor`.
    LinearWithWarmup {
        /// Peak learning rate after warm-up.
        peak: f32,
        /// Final floor rate.
        floor: f32,
        /// Warm-up steps.
        warmup: u64,
        /// Total decay horizon.
        total: u64,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based).
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::CosineWithWarmup {
                peak,
                floor,
                warmup,
                total,
            } => {
                if warmup > 0 && step < warmup {
                    return peak * (step + 1) as f32 / warmup as f32;
                }
                let horizon = total.max(warmup + 1) - warmup;
                let t = ((step - warmup).min(horizon)) as f32 / horizon as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                floor + (peak - floor) * cos
            }
            LrSchedule::LinearWithWarmup {
                peak,
                floor,
                warmup,
                total,
            } => {
                if warmup > 0 && step < warmup {
                    return peak * (step + 1) as f32 / warmup as f32;
                }
                let horizon = total.max(warmup + 1) - warmup;
                let t = ((step - warmup).min(horizon)) as f32 / horizon as f32;
                peak + (floor - peak) * t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(1_000_000), 0.1);
    }

    fn cosine() -> LrSchedule {
        LrSchedule::CosineWithWarmup {
            peak: 1.0,
            floor: 0.1,
            warmup: 10,
            total: 110,
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = cosine();
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(4) - 0.5).abs() < 1e-6);
        assert!((s.at(9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_decays_to_floor() {
        let s = cosine();
        assert!((s.at(10) - 1.0).abs() < 1e-6, "peak right after warmup");
        let mid = s.at(60); // halfway through decay
        assert!((mid - 0.55).abs() < 1e-2, "midpoint {mid}");
        assert!((s.at(110) - 0.1).abs() < 1e-6);
        assert!((s.at(10_000) - 0.1).abs() < 1e-6, "clamped at floor");
    }

    #[test]
    fn cosine_is_monotone_after_warmup() {
        let s = cosine();
        let mut last = f32::INFINITY;
        for step in 10..=110 {
            let lr = s.at(step);
            assert!(lr <= last + 1e-7, "step {step}");
            last = lr;
        }
    }

    use proptest::prelude::*;

    /// Builds either schedule shape from a flag so both share properties.
    fn shaped(cosine: bool, peak: f32, floor: f32, warmup: u64, total: u64) -> LrSchedule {
        if cosine {
            LrSchedule::CosineWithWarmup {
                peak,
                floor,
                warmup,
                total,
            }
        } else {
            LrSchedule::LinearWithWarmup {
                peak,
                floor,
                warmup,
                total,
            }
        }
    }

    proptest! {
        /// Warm-up ramps monotonically up to `peak`; decay stays within
        /// `[floor, peak]`; every step yields a finite rate.
        #[test]
        fn prop_warmup_monotone_decay_floored(
            peak in 1e-5f32..1.0,
            floor_frac in 0.0f32..1.0,
            warmup in 0u64..48,
            extra in 0u64..200,
            shape in 0u8..2,
        ) {
            let floor = peak * floor_frac;
            let total = warmup + extra;
            let s = shaped(shape == 1, peak, floor, warmup, total);
            let mut last = 0.0f32;
            for step in 0..warmup {
                let lr = s.at(step);
                prop_assert!(lr.is_finite(), "warmup step {step}: {lr}");
                prop_assert!(
                    lr >= last - peak * 1e-6,
                    "warmup not monotone at step {step}: {last} -> {lr}"
                );
                prop_assert!(lr <= peak * (1.0 + 1e-6));
                last = lr;
            }
            for step in warmup..=total + 16 {
                let lr = s.at(step);
                prop_assert!(lr.is_finite(), "decay step {step}: {lr}");
                prop_assert!(
                    lr >= floor - peak * 1e-6,
                    "step {step} fell below floor: {lr} < {floor}"
                );
                prop_assert!(lr <= peak * (1.0 + 1e-6), "step {step} above peak: {lr}");
            }
        }

        /// The degenerate `total == warmup` horizon must not divide by zero:
        /// every step (before, at, and far past the boundary) is finite and
        /// within `[floor, peak]` after warm-up.
        #[test]
        fn prop_total_equals_warmup_is_finite(
            peak in 1e-5f32..1.0,
            floor_frac in 0.0f32..1.0,
            warmup in 0u64..48,
            shape in 0u8..2,
        ) {
            let floor = peak * floor_frac;
            let s = shaped(shape == 1, peak, floor, warmup, warmup);
            for step in [0, warmup.saturating_sub(1), warmup, warmup + 1, warmup + 1_000_000] {
                let lr = s.at(step);
                prop_assert!(lr.is_finite(), "step {step}: {lr}");
                if step >= warmup {
                    prop_assert!(lr >= floor - peak * 1e-6 && lr <= peak * (1.0 + 1e-6));
                }
            }
        }
    }

    #[test]
    fn linear_decay() {
        let s = LrSchedule::LinearWithWarmup {
            peak: 1.0,
            floor: 0.0,
            warmup: 0,
            total: 100,
        };
        assert!((s.at(0) - 1.0).abs() < 1e-6);
        assert!((s.at(50) - 0.5).abs() < 1e-6);
        assert!((s.at(100)).abs() < 1e-6);
        assert!((s.at(500)).abs() < 1e-6);
    }
}
