//! Secondary-storage (NVMe) tier (§III-G).
//!
//! The paper memory-maps a swap file on NVMe and issues asynchronous bulk
//! reads/writes so disk I/O overlaps with PCIe traffic and compute. The
//! simulator side of this lives in [`crate::offload`] (the `Nvme` cold
//! tier); this module provides the *functional* backing store — a real
//! temporary swap file holding per-layer parameter blobs with async
//! worker-thread I/O — used by the host substrate and the NVMe tests.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

/// A swap file storing fixed-size per-layer parameter blobs.
pub struct NvmeStore {
    path: PathBuf,
    file: Mutex<File>,
    slot_floats: usize,
    slots: usize,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl NvmeStore {
    /// Creates a swap file in the system temp directory with `slots` blobs
    /// of `slot_floats` f32 each.
    pub fn create(slots: usize, slot_floats: usize) -> std::io::Result<Arc<Self>> {
        let path = std::env::temp_dir().join(format!(
            "stronghold-swap-{}-{}.bin",
            std::process::id(),
            NEXT_ID.fetch_add(1, Ordering::SeqCst)
        ));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        file.set_len((slots * slot_floats * 4) as u64)?;
        Ok(Arc::new(NvmeStore {
            path,
            file: Mutex::new(file),
            slot_floats,
            slots,
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        }))
    }

    /// Writes a layer blob to its slot.
    ///
    /// # Panics
    /// Panics if `layer >= slots` or the data length mismatches.
    pub fn write_layer(&self, layer: usize, data: &[f32]) -> std::io::Result<()> {
        assert!(layer < self.slots, "slot {layer} out of {}", self.slots);
        assert_eq!(data.len(), self.slot_floats, "blob size mismatch");
        let bytes: Vec<u8> = data.iter().flat_map(|f| f.to_le_bytes()).collect();
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start((layer * self.slot_floats * 4) as u64))?;
        f.write_all(&bytes)?;
        self.bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Reads a layer blob back.
    pub fn read_layer(&self, layer: usize) -> std::io::Result<Vec<f32>> {
        assert!(layer < self.slots);
        let mut buf = vec![0u8; self.slot_floats * 4];
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start((layer * self.slot_floats * 4) as u64))?;
            f.read_exact(&mut buf)?;
        }
        self.bytes_read
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Writes `data` at float offset `float_off` inside `slot`, recycling
    /// `scratch` as the byte staging buffer (no allocation once `scratch`
    /// has grown to `4 * data.len()`). f32 → little-endian bytes is exact,
    /// so round trips are bit-identical.
    ///
    /// # Panics
    /// Panics if the range `[float_off, float_off + data.len())` exceeds
    /// the slot.
    pub fn write_at(
        &self,
        slot: usize,
        float_off: usize,
        data: &[f32],
        scratch: &mut Vec<u8>,
    ) -> std::io::Result<()> {
        assert!(slot < self.slots, "slot {slot} out of {}", self.slots);
        assert!(
            float_off + data.len() <= self.slot_floats,
            "range {}..{} out of slot of {} floats",
            float_off,
            float_off + data.len(),
            self.slot_floats
        );
        scratch.clear();
        scratch.reserve(data.len() * 4);
        for v in data {
            scratch.extend_from_slice(&v.to_le_bytes());
        }
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(
            ((slot * self.slot_floats + float_off) * 4) as u64,
        ))?;
        f.write_all(scratch)?;
        self.bytes_written
            .fetch_add(scratch.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Reads `out.len()` floats from float offset `float_off` inside `slot`
    /// into `out`, recycling `scratch` as the byte staging buffer.
    ///
    /// # Panics
    /// Panics if the range `[float_off, float_off + out.len())` exceeds
    /// the slot.
    pub fn read_at(
        &self,
        slot: usize,
        float_off: usize,
        out: &mut [f32],
        scratch: &mut Vec<u8>,
    ) -> std::io::Result<()> {
        assert!(slot < self.slots, "slot {slot} out of {}", self.slots);
        assert!(
            float_off + out.len() <= self.slot_floats,
            "range {}..{} out of slot of {} floats",
            float_off,
            float_off + out.len(),
            self.slot_floats
        );
        scratch.clear();
        scratch.resize(out.len() * 4, 0);
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(
                ((slot * self.slot_floats + float_off) * 4) as u64,
            ))?;
            f.read_exact(scratch)?;
        }
        self.bytes_read
            .fetch_add(scratch.len() as u64, Ordering::Relaxed);
        for (dst, c) in out.iter_mut().zip(scratch.chunks_exact(4)) {
            *dst = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
        Ok(())
    }

    /// The swap file's path (for lifecycle tests — the file is removed when
    /// the store drops).
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Floats per slot.
    pub fn slot_floats(&self) -> usize {
        self.slot_floats
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

impl Drop for NvmeStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

enum IoJob {
    Read(usize, Arc<(Mutex<Option<Vec<f32>>>, Condvar)>),
    Write(usize, Vec<f32>),
}

/// Asynchronous bulk I/O front-end over an [`NvmeStore`]: one worker thread
/// services a request queue so reads prefetch ahead of use and writes drain
/// in the background, overlapping with "PCIe" copies and compute exactly as
/// §III-G describes.
pub struct AsyncNvme {
    store: Arc<NvmeStore>,
    tx: Option<Sender<IoJob>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// Handle to an in-flight asynchronous read.
pub struct ReadHandle {
    cell: Arc<(Mutex<Option<Vec<f32>>>, Condvar)>,
}

impl ReadHandle {
    /// Blocks until the read completes and returns the blob.
    pub fn wait(self) -> Vec<f32> {
        let (lock, cv) = &*self.cell;
        let mut slot = lock.lock();
        while slot.is_none() {
            cv.wait(&mut slot);
        }
        slot.take().expect("read result")
    }
}

impl AsyncNvme {
    /// Spawns the I/O worker over `store`.
    pub fn new(store: Arc<NvmeStore>) -> Self {
        let (tx, rx) = unbounded::<IoJob>();
        let st = Arc::clone(&store);
        let worker = std::thread::Builder::new()
            .name("nvme-io".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        IoJob::Read(layer, cell) => {
                            let data = st.read_layer(layer).expect("nvme read");
                            let (lock, cv) = &*cell;
                            *lock.lock() = Some(data);
                            cv.notify_all();
                        }
                        IoJob::Write(layer, data) => {
                            st.write_layer(layer, &data).expect("nvme write");
                        }
                    }
                }
            })
            .expect("spawn nvme worker");
        AsyncNvme {
            store,
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Issues an asynchronous read (prefetch); returns a waitable handle.
    pub fn read_async(&self, layer: usize) -> ReadHandle {
        let cell = Arc::new((Mutex::new(None), Condvar::new()));
        self.tx
            .as_ref()
            .expect("alive")
            .send(IoJob::Read(layer, Arc::clone(&cell)))
            .expect("nvme queue");
        ReadHandle { cell }
    }

    /// Issues an asynchronous write (offload).
    pub fn write_async(&self, layer: usize, data: Vec<f32>) {
        self.tx
            .as_ref()
            .expect("alive")
            .send(IoJob::Write(layer, data))
            .expect("nvme queue");
    }

    /// The underlying store (for counters).
    pub fn store(&self) -> &NvmeStore {
        &self.store
    }
}

impl Drop for AsyncNvme {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// A layer store whose parameter images live on the NVMe swap file, with
/// only the Adam moments and pending-flags resident in RAM — the functional
/// counterpart of the §III-G tier. Drop-in compatible with the subset of
/// [`crate::optimpool::LayerStore`]'s surface the pipeline uses.
pub struct NvmeLayerStore {
    io: AsyncNvme,
    state: Vec<parking_lot::Mutex<NvmeSlotState>>,
    cv: Vec<Condvar>,
    hp: crate::adam::AdamParams,
}

struct NvmeSlotState {
    adam: crate::adam::AdamState,
    pending_update: bool,
}

impl NvmeLayerStore {
    /// Creates the store, writing each layer's initial parameters to the
    /// swap file.
    pub fn new(layer_params: Vec<Vec<f32>>, hp: crate::adam::AdamParams) -> std::io::Result<Self> {
        assert!(!layer_params.is_empty());
        let floats = layer_params[0].len();
        assert!(layer_params.iter().all(|p| p.len() == floats));
        let store = NvmeStore::create(layer_params.len(), floats)?;
        let io = AsyncNvme::new(Arc::clone(&store));
        for (i, p) in layer_params.iter().enumerate() {
            store.write_layer(i, p)?;
        }
        let state = layer_params
            .iter()
            .map(|p| {
                parking_lot::Mutex::new(NvmeSlotState {
                    adam: crate::adam::AdamState::new(p.len()),
                    pending_update: false,
                })
            })
            .collect();
        let cv = layer_params.iter().map(|_| Condvar::new()).collect();
        Ok(NvmeLayerStore { io, state, cv, hp })
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Reads a layer's parameters from the swap file, waiting out any
    /// pending update (the same cross-iteration dependency the RAM store
    /// enforces).
    pub fn read_params(&self, layer: usize) -> Vec<f32> {
        {
            let mut st = self.state[layer].lock();
            while st.pending_update {
                self.cv[layer].wait(&mut st);
            }
        }
        self.io.read_async(layer).wait()
    }

    /// Marks a layer update in flight.
    pub fn mark_pending(&self, layer: usize) {
        self.state[layer].lock().pending_update = true;
    }

    /// Applies an Adam update: page in, step, page out.
    pub fn apply_update(&self, layer: usize, grads: &[f32]) {
        let mut params = self.io.read_async(layer).wait();
        let mut st = self.state[layer].lock();
        st.adam.step(&mut params, grads, &self.hp);
        self.io.write_async(layer, params);
        st.pending_update = false;
        self.cv[layer].notify_all();
    }

    /// Total swap traffic so far (read + written bytes).
    pub fn swap_traffic(&self) -> (u64, u64) {
        (
            self.io.store().bytes_read(),
            self.io.store().bytes_written(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let store = NvmeStore::create(4, 16).unwrap();
        let blob: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        store.write_layer(2, &blob).unwrap();
        assert_eq!(store.read_layer(2).unwrap(), blob);
        assert_eq!(store.bytes_written(), 64);
        assert_eq!(store.bytes_read(), 64);
    }

    #[test]
    fn slots_are_independent() {
        let store = NvmeStore::create(3, 4).unwrap();
        store.write_layer(0, &[1.0; 4]).unwrap();
        store.write_layer(1, &[2.0; 4]).unwrap();
        store.write_layer(2, &[3.0; 4]).unwrap();
        store.write_layer(1, &[9.0; 4]).unwrap();
        assert_eq!(store.read_layer(0).unwrap(), vec![1.0; 4]);
        assert_eq!(store.read_layer(1).unwrap(), vec![9.0; 4]);
        assert_eq!(store.read_layer(2).unwrap(), vec![3.0; 4]);
    }

    #[test]
    fn async_prefetch_sees_queued_writes() {
        // A read issued after a write on the same queue must observe the
        // write (FIFO service order — the property the offloading pipeline
        // depends on).
        let store = NvmeStore::create(2, 8).unwrap();
        let io = AsyncNvme::new(Arc::clone(&store));
        io.write_async(1, vec![7.0; 8]);
        let h = io.read_async(1);
        assert_eq!(h.wait(), vec![7.0; 8]);
    }

    #[test]
    fn many_async_ops_complete() {
        let store = NvmeStore::create(16, 32).unwrap();
        let io = AsyncNvme::new(Arc::clone(&store));
        for l in 0..16 {
            io.write_async(l, vec![l as f32; 32]);
        }
        let handles: Vec<ReadHandle> = (0..16).map(|l| io.read_async(l)).collect();
        for (l, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait(), vec![l as f32; 32]);
        }
        assert_eq!(io.store().bytes_written(), 16 * 32 * 4);
    }

    #[test]
    #[should_panic(expected = "blob size mismatch")]
    fn wrong_blob_size_panics() {
        let store = NvmeStore::create(1, 4).unwrap();
        let _ = store.write_layer(0, &[1.0; 5]);
    }

    #[test]
    fn nvme_layer_store_matches_ram_store() {
        use crate::adam::AdamParams;
        use crate::optimpool::LayerStore;

        let hp = AdamParams::default();
        let init: Vec<Vec<f32>> = (0..3)
            .map(|l| (0..16).map(|i| ((l * 16 + i) as f32).sin()).collect())
            .collect();
        let ram = LayerStore::new(init.clone());
        let disk = NvmeLayerStore::new(init, hp).unwrap();

        for step in 0..4 {
            for l in 0..3 {
                let g: Vec<f32> = (0..16)
                    .map(|i| (step * 100 + l * 16 + i) as f32 * 1e-3)
                    .collect();
                ram.mark_pending(l);
                ram.apply_update(l, &g, &hp);
                disk.mark_pending(l);
                disk.apply_update(l, &g);
            }
        }
        for l in 0..3 {
            assert_eq!(ram.read_params(l), disk.read_params(l), "layer {l}");
        }
        let (r, w) = disk.swap_traffic();
        assert!(r > 0 && w > 0, "swap traffic recorded");
    }

    #[test]
    fn swap_file_removed_on_drop() {
        // Satellite of ISSUE 9: the swap file must not leak. `Drop` runs on
        // unwind too, so this also covers the panic path.
        let store = NvmeStore::create(2, 8).unwrap();
        let path = store.path().to_path_buf();
        assert!(path.exists(), "swap file created");
        drop(store);
        assert!(!path.exists(), "swap file removed on drop");
    }

    #[test]
    fn offset_io_round_trips_and_counts_bytes() {
        let store = NvmeStore::create(2, 12).unwrap();
        let mut scratch = Vec::new();
        // Partial-range writes land at the right offsets within the slot.
        store
            .write_at(1, 0, &[1.0, 2.0, 3.0, 4.0], &mut scratch)
            .unwrap();
        store.write_at(1, 4, &[5.0; 4], &mut scratch).unwrap();
        store.write_at(1, 8, &[9.0; 4], &mut scratch).unwrap();
        let mut out = [0.0f32; 4];
        store.read_at(1, 0, &mut out, &mut scratch).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
        store.read_at(1, 8, &mut out, &mut scratch).unwrap();
        assert_eq!(out, [9.0; 4]);
        // Exact byte accounting: 12 floats written, 8 read.
        assert_eq!(store.bytes_written(), 48);
        assert_eq!(store.bytes_read(), 32);
        // Bit-exactness through the le-bytes round trip, including
        // non-finite and denormal values.
        let weird = [f32::NAN, f32::INFINITY, -0.0, 1e-42];
        store.write_at(0, 2, &weird, &mut scratch).unwrap();
        let mut back = [0.0f32; 4];
        store.read_at(0, 2, &mut back, &mut scratch).unwrap();
        for (a, b) in weird.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nvme_store_read_waits_for_pending() {
        use crate::adam::AdamParams;
        let store =
            Arc::new(NvmeLayerStore::new(vec![vec![1.0; 8]], AdamParams::default()).unwrap());
        store.mark_pending(0);
        let s2 = Arc::clone(&store);
        let reader = std::thread::spawn(move || s2.read_params(0));
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!reader.is_finished(), "reader should block");
        store.apply_update(0, &[0.5; 8]);
        let seen = reader.join().unwrap();
        assert_eq!(seen.len(), 8);
        assert!(seen.iter().all(|v| *v != 1.0), "observed updated params");
    }
}
