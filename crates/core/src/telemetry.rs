//! Unified runtime telemetry: counters, gauges, latency histograms, and
//! span events behind one cheap handle.
//!
//! STRONGHOLD's headline numbers are *runtime observations* — how much
//! H2D/D2H copy time hides under compute, how deep the prefetch queue
//! runs, how busy the CPU optimizer workers are. This module is the
//! shared instrumentation layer those observations flow through.
//!
//! Design constraints (and how they are met):
//!
//! * **Zero-cost when disabled.** [`Telemetry`] is `Option<Arc<Inner>>`;
//!   the disabled handle is `None` and every recording call is a single
//!   branch on it. Metric handles ([`Counter`], [`Gauge`], [`Histogram`])
//!   obtained from a disabled `Telemetry` are no-ops too, so hot loops
//!   hoist the name lookup out and pay one `Option` check per event.
//! * **Thread-safe.** The offload engine records from the prefetcher,
//!   copy, and optimizer threads concurrently: counters/gauges/histogram
//!   buckets are atomics, and only span capture takes a (short) lock.
//! * **Substrate-agnostic clock.** Spans are stamped through the
//!   [`TelemetryClock`] trait: [`WallClock`] for the real-thread host
//!   substrate, [`VirtualClock`] (an atomic fed simulator nanoseconds)
//!   for virtual-time runs, so both produce comparable traces.
//!
//! Two sinks: [`Telemetry::snapshot_json`] (consumed by the bench
//! reports, includes measured overlap efficiency) and
//! [`Telemetry::to_chrome_trace`] (the `chrome://tracing` /
//! <https://ui.perfetto.dev> event format).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Monotonic nanosecond clock driving span timestamps.
pub trait TelemetryClock: Send + Sync {
    /// Nanoseconds since the clock's origin.
    fn now_nanos(&self) -> u64;
}

/// Wall-clock time from a fixed origin (process-local `Instant`).
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Clock originating now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl TelemetryClock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Virtual time: whoever drives the simulation advances it explicitly
/// (monotonicity is the driver's contract, matching sim semantics).
#[derive(Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// Clock starting at zero virtual nanoseconds.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances to `nanos` (keeps the max of old and new, so concurrent
    /// feeders can't move time backwards).
    pub fn advance_to(&self, nanos: u64) {
        self.now.fetch_max(nanos, Ordering::Relaxed);
    }
}

impl TelemetryClock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// Monotonically increasing event count.
#[derive(Default)]
struct CounterCell {
    value: AtomicU64,
}

/// Instantaneous level with peak tracking (e.g. arena bytes in use,
/// copy-thread queue depth).
#[derive(Default)]
struct GaugeCell {
    value: AtomicI64,
    peak: AtomicI64,
}

const HIST_BUCKETS: usize = 64;

/// Log2-bucketed latency histogram: bucket `i` holds values in
/// `[2^(i-1), 2^i)` (bucket 0 holds zero).
struct HistogramCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCell {
    fn record(&self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Approximate percentile (`p` in `[0, 100]`): the upper bound of the
    /// bucket containing the rank, clamped into the exact observed
    /// `[min, max]` so degenerate distributions report exactly.
    fn percentile(&self, p: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let mut result = self.max.load(Ordering::Relaxed);
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i (bucket 0 is exactly zero).
                result = if i == 0 { 0 } else { (1u64 << i) - 1 };
                break;
            }
        }
        result
            .max(self.min.load(Ordering::Relaxed))
            .min(self.max.load(Ordering::Relaxed))
    }
}

/// One completed span on a named track.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Track (≈ pipeline lane / thread) the span belongs to.
    pub track: String,
    /// Event label, e.g. `"h2d L3"`.
    pub name: String,
    /// Start, clock nanoseconds.
    pub start_ns: u64,
    /// End, clock nanoseconds.
    pub end_ns: u64,
    /// Ordinal of the OS thread that recorded the span (process-unique,
    /// assigned on first recording). Lets trace consumers verify *which*
    /// thread did the work — e.g. that gradient D2H copies run on the
    /// offload thread, not the compute thread's critical path.
    pub thread: u64,
}

/// Process-unique ordinal of the calling thread, assigned lazily on first
/// use. Cheaper and more stable across platforms than hashing
/// `std::thread::ThreadId`.
pub fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

struct Inner {
    clock: Arc<dyn TelemetryClock>,
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    spans: Mutex<Vec<SpanEvent>>,
}

/// Cheap-clone telemetry handle. `Telemetry::disabled()` turns every
/// recording site into a branch-on-`None` no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Telemetry({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Telemetry {
    /// The no-op handle (also `Default`).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle stamped by wall-clock time.
    pub fn enabled() -> Self {
        Telemetry::with_clock(Arc::new(WallClock::new()))
    }

    /// An enabled handle stamped by the given clock (use an
    /// `Arc<VirtualClock>` to drive spans from simulator time).
    pub fn with_clock(clock: Arc<dyn TelemetryClock>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current clock reading (0 when disabled).
    pub fn now_nanos(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_nanos())
    }

    /// Named counter handle; hoist out of hot loops.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            let mut map = i.counters.lock().expect("counter registry");
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// Named gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            let mut map = i.gauges.lock().expect("gauge registry");
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// Named histogram handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| {
            let mut map = i.histograms.lock().expect("histogram registry");
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// Starts a span on `track`; the span records itself when the guard
    /// drops (or at an explicit [`SpanGuard::end`]).
    pub fn span(&self, track: &str, name: impl Into<String>) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { state: None },
            Some(inner) => SpanGuard {
                state: Some(SpanGuardState {
                    inner: Arc::clone(inner),
                    track: track.to_string(),
                    name: name.into(),
                    start_ns: inner.clock.now_nanos(),
                }),
            },
        }
    }

    /// Records a fully-formed span (used to bridge simulator timelines,
    /// whose intervals are known only after scheduling). Stamped with the
    /// calling thread's ordinal.
    pub fn record_span(&self, track: &str, name: &str, start_ns: u64, end_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.spans.lock().expect("span buffer").push(SpanEvent {
                track: track.to_string(),
                name: name.to_string(),
                start_ns,
                end_ns: end_ns.max(start_ns),
                thread: thread_ordinal(),
            });
        }
    }

    /// Copies out all spans recorded so far.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.spans.lock().expect("span buffer").clone())
    }

    /// Total busy nanoseconds (union of span intervals) on one track.
    pub fn track_busy_nanos(&self, track: &str) -> u64 {
        interval_union_len(&self.track_intervals(|t| t == track))
    }

    /// Nanoseconds during which spans of `track_a` and `track_b` run
    /// concurrently (intersection of the two busy unions).
    pub fn overlap_nanos(&self, track_a: &str, track_b: &str) -> u64 {
        let a = self.track_intervals(|t| t == track_a);
        let b = self.track_intervals(|t| t == track_b);
        interval_intersection_len(&a, &b)
    }

    fn track_intervals(&self, pred: impl Fn(&str) -> bool) -> Vec<(u64, u64)> {
        let mut iv: Vec<(u64, u64)> = self
            .spans()
            .into_iter()
            .filter(|s| pred(&s.track))
            .map(|s| (s.start_ns, s.end_ns))
            .collect();
        iv.sort_unstable();
        iv
    }

    /// Measured copy/compute concurrency: spans on tracks whose names
    /// contain `"copy"` vs tracks containing `"compute"`. Returns
    /// `(copy_busy, compute_busy, overlap)` in nanoseconds.
    pub fn copy_compute_overlap(&self) -> (u64, u64, u64) {
        let copy = self.track_intervals(|t| t.contains("copy"));
        let compute = self.track_intervals(|t| t.contains("compute"));
        (
            interval_union_len(&copy),
            interval_union_len(&compute),
            interval_intersection_len(&copy, &compute),
        )
    }

    /// JSON metrics snapshot: counters, gauges (+peaks), histogram
    /// summaries, per-track span totals, and copy/compute overlap
    /// efficiency. Stable key order (sorted maps) for diffable output.
    pub fn snapshot_json(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        let mut root = Map::new();
        root.insert("enabled".into(), Value::Bool(self.is_enabled()));
        let Some(inner) = &self.inner else {
            return Value::Object(root);
        };

        let mut counters = Map::new();
        for (name, c) in inner.counters.lock().expect("counter registry").iter() {
            counters.insert(name.clone(), Value::from(c.value.load(Ordering::Relaxed)));
        }
        root.insert("counters".into(), Value::Object(counters));

        let mut gauges = Map::new();
        for (name, g) in inner.gauges.lock().expect("gauge registry").iter() {
            let mut entry = Map::new();
            entry.insert("value".into(), Value::from(g.value.load(Ordering::Relaxed)));
            entry.insert("peak".into(), Value::from(g.peak.load(Ordering::Relaxed)));
            gauges.insert(name.clone(), Value::Object(entry));
        }
        root.insert("gauges".into(), Value::Object(gauges));

        let mut hists = Map::new();
        for (name, h) in inner.histograms.lock().expect("histogram registry").iter() {
            let count = h.count.load(Ordering::Relaxed);
            let sum = h.sum.load(Ordering::Relaxed);
            let mut entry = Map::new();
            entry.insert("count".into(), Value::from(count));
            entry.insert("sum".into(), Value::from(sum));
            entry.insert(
                "mean".into(),
                Value::from(if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64
                }),
            );
            entry.insert(
                "min".into(),
                Value::from(if count == 0 {
                    0
                } else {
                    h.min.load(Ordering::Relaxed)
                }),
            );
            entry.insert("max".into(), Value::from(h.max.load(Ordering::Relaxed)));
            entry.insert("p50".into(), Value::from(h.percentile(50.0)));
            entry.insert("p90".into(), Value::from(h.percentile(90.0)));
            entry.insert("p99".into(), Value::from(h.percentile(99.0)));
            hists.insert(name.clone(), Value::Object(entry));
        }
        root.insert("histograms".into(), Value::Object(hists));

        let mut per_track: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for s in self.spans() {
            let e = per_track.entry(s.track.clone()).or_insert((0, 0));
            e.0 += 1;
        }
        for (track, entry) in per_track.iter_mut() {
            entry.1 = self.track_busy_nanos(track);
        }
        let mut tracks = Map::new();
        for (track, (count, busy)) in per_track {
            let mut entry = Map::new();
            entry.insert("spans".into(), Value::from(count));
            entry.insert("busy_ns".into(), Value::from(busy));
            tracks.insert(track, Value::Object(entry));
        }
        root.insert("tracks".into(), Value::Object(tracks));

        let (copy_busy, compute_busy, overlap) = self.copy_compute_overlap();
        let mut ov = Map::new();
        ov.insert("copy_busy_ns".into(), Value::from(copy_busy));
        ov.insert("compute_busy_ns".into(), Value::from(compute_busy));
        ov.insert("overlap_ns".into(), Value::from(overlap));
        ov.insert(
            // Fraction of copy time hidden under compute — the quantity
            // the paper's Fig. 4 pipeline exists to maximize.
            "overlap_efficiency".into(),
            Value::from(if copy_busy == 0 {
                0.0
            } else {
                overlap as f64 / copy_busy as f64
            }),
        );
        root.insert("overlap".into(), Value::Object(ov));

        Value::Object(root)
    }

    /// Chrome-trace (`chrome://tracing` / Perfetto) JSON: one complete
    /// (`"X"`) event per span, tracks mapped to thread lanes.
    pub fn to_chrome_trace(&self) -> String {
        use serde_json::{Map, Value};
        let spans = self.spans();
        let mut track_ids: BTreeMap<String, u64> = BTreeMap::new();
        for s in &spans {
            let next = track_ids.len() as u64;
            track_ids.entry(s.track.clone()).or_insert(next);
        }
        let mut events: Vec<Value> = Vec::with_capacity(spans.len() + track_ids.len());
        for (track, tid) in &track_ids {
            let mut meta = Map::new();
            meta.insert("ph".into(), Value::from("M"));
            meta.insert("name".into(), Value::from("thread_name"));
            meta.insert("pid".into(), Value::from(0u64));
            meta.insert("tid".into(), Value::from(*tid));
            let mut args = Map::new();
            args.insert("name".into(), Value::from(track.as_str()));
            meta.insert("args".into(), Value::Object(args));
            events.push(Value::Object(meta));
        }
        for s in &spans {
            let mut ev = Map::new();
            ev.insert("ph".into(), Value::from("X"));
            ev.insert("name".into(), Value::from(s.name.as_str()));
            ev.insert("cat".into(), Value::from(s.track.as_str()));
            ev.insert("pid".into(), Value::from(0u64));
            ev.insert("tid".into(), Value::from(track_ids[&s.track]));
            // Chrome trace timestamps/durations are microseconds.
            ev.insert("ts".into(), Value::from(s.start_ns as f64 / 1e3));
            ev.insert(
                "dur".into(),
                Value::from((s.end_ns - s.start_ns) as f64 / 1e3),
            );
            events.push(Value::Object(ev));
        }
        let mut root = Map::new();
        root.insert("traceEvents".into(), Value::Array(events));
        root.insert("displayTimeUnit".into(), Value::from("ms"));
        serde_json::to_string(&Value::Object(root)).expect("trace serializes")
    }
}

/// Bridges the tensor substrate's cumulative kernel statistics
/// (`stronghold_tensor::matmul::stats` and `stronghold_tensor::ops::stats`)
/// into `tel` as gauges.
///
/// The tensor crate cannot depend on `core`, so the kernels accumulate
/// FLOP/time/call totals into process-global atomics; this function
/// publishes the current totals under `kernel.{nn,nt,tn}.{flops, nanos,
/// calls, gflops_x100}` for the GEMM layouts and `op.<name>.{flops,
/// nanos, calls, gflops_x100}` for the non-GEMM row/elementwise kernels
/// (`gflops_x100` is mean GFLOP/s × 100, so the integer gauge keeps two
/// decimal places; op FLOP counts are nominal per-element cost factors).
/// Call it at a step boundary — e.g. the end of `train_step` — so
/// snapshots see up-to-date values.
///
/// Recording is gauge-`set` only and gated on [`Telemetry::is_enabled`]:
/// it reads the kernel counters without touching kernel execution, so
/// the "telemetry never perturbs training" property holds.
pub fn record_kernel_stats(tel: &Telemetry) {
    if !tel.is_enabled() {
        return;
    }
    let snap = stronghold_tensor::matmul::stats::snapshot();
    for (stats, name) in snap
        .iter()
        .zip(stronghold_tensor::matmul::stats::LAYOUT_NAMES)
    {
        tel.gauge(&format!("kernel.{name}.flops"))
            .set(stats.flops as i64);
        tel.gauge(&format!("kernel.{name}.nanos"))
            .set(stats.nanos as i64);
        tel.gauge(&format!("kernel.{name}.calls"))
            .set(stats.calls as i64);
        tel.gauge(&format!("kernel.{name}.gflops_x100"))
            .set((stats.gflops() * 100.0).round() as i64);
    }
    let ops = stronghold_tensor::ops::stats::snapshot();
    for (stats, name) in ops.iter().zip(stronghold_tensor::ops::stats::NAMES) {
        tel.gauge(&format!("op.{name}.flops"))
            .set(stats.flops as i64);
        tel.gauge(&format!("op.{name}.nanos"))
            .set(stats.nanos as i64);
        tel.gauge(&format!("op.{name}.calls"))
            .set(stats.calls as i64);
        let gflops = if stats.nanos > 0 {
            stats.flops as f64 / stats.nanos as f64
        } else {
            0.0
        };
        tel.gauge(&format!("op.{name}.gflops_x100"))
            .set((gflops * 100.0).round() as i64);
    }
}

/// Counter handle; a no-op when obtained from disabled telemetry.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// Gauge handle with peak tracking; a no-op when disabled.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

impl Gauge {
    /// Adds `delta` (may be negative) and folds the result into the peak.
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            let now = g.value.fetch_add(delta, Ordering::Relaxed) + delta;
            g.peak.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Sets an absolute level.
    pub fn set(&self, value: i64) {
        if let Some(g) = &self.0 {
            g.value.store(value, Ordering::Relaxed);
            g.peak.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |g| g.value.load(Ordering::Relaxed))
    }

    /// Highest level ever observed.
    pub fn peak(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |g| g.peak.load(Ordering::Relaxed))
    }
}

/// Histogram handle; a no-op when disabled.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.count())
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }

    /// Approximate percentile, `p` in `[0, 100]`; see
    /// `HistogramCell::percentile` for the bucket-bound semantics.
    pub fn percentile(&self, p: f64) -> u64 {
        self.0.as_ref().map_or(0, |h| h.percentile(p))
    }
}

struct SpanGuardState {
    inner: Arc<Inner>,
    track: String,
    name: String,
    start_ns: u64,
}

/// RAII span: records `[start, drop)` on its track.
#[must_use = "the span measures until the guard drops"]
pub struct SpanGuard {
    state: Option<SpanGuardState>,
}

impl SpanGuard {
    /// Ends the span now (same as dropping, but explicit at call sites).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(st) = self.state.take() {
            let end_ns = st.inner.clock.now_nanos();
            st.inner.spans.lock().expect("span buffer").push(SpanEvent {
                track: st.track,
                name: st.name,
                start_ns: st.start_ns,
                end_ns: end_ns.max(st.start_ns),
                thread: thread_ordinal(),
            });
        }
    }
}

/// Length of the union of half-open intervals (input sorted by start).
fn interval_union_len(sorted: &[(u64, u64)]) -> u64 {
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(s, e) in sorted {
        match cur {
            None => cur = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    cur = Some((cs, ce.max(e)));
                } else {
                    total += ce - cs;
                    cur = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Length of the intersection of two interval unions (inputs sorted).
fn interval_intersection_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    // Merge each side first so overlapping spans within one track don't
    // double-count.
    let ma = merge(a);
    let mb = merge(b);
    let (mut i, mut j) = (0, 0);
    let mut total = 0u64;
    while i < ma.len() && j < mb.len() {
        let lo = ma[i].0.max(mb[j].0);
        let hi = ma[i].1.min(mb[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if ma[i].1 <= mb[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn merge(sorted: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for &(s, e) in sorted {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let t = Telemetry::disabled();
        let c = t.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = t.gauge("g");
        g.add(3);
        assert_eq!((g.get(), g.peak()), (0, 0));
        let h = t.histogram("h");
        h.record(9);
        assert_eq!(h.count(), 0);
        t.span("track", "ev").end();
        assert!(t.spans().is_empty());
        assert_eq!(t.snapshot_json()["enabled"], serde_json::Value::Bool(false));
    }

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let t = Telemetry::enabled();
        t.counter("a").add(2);
        t.counter("a").add(3);
        assert_eq!(t.counter("a").get(), 5);
        assert_eq!(t.counter("b").get(), 0);
    }

    #[test]
    fn gauge_tracks_peak() {
        let t = Telemetry::enabled();
        let g = t.gauge("occ");
        g.add(10);
        g.add(15);
        g.add(-20);
        assert_eq!(g.get(), 5);
        assert_eq!(g.peak(), 25);
    }

    #[test]
    fn concurrent_recording_balances() {
        // Satellite requirement: many threads hammering one registry;
        // totals must balance exactly.
        let t = Telemetry::enabled();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let t = t.clone();
                s.spawn(move || {
                    let c = t.counter("hits");
                    let g = t.gauge("level");
                    let h = t.histogram("lat");
                    for i in 0..per_thread {
                        c.incr();
                        g.add(1);
                        g.add(-1);
                        h.record(i % 1000);
                    }
                });
            }
        });
        assert_eq!(t.counter("hits").get(), threads * per_thread);
        assert_eq!(t.gauge("level").get(), 0);
        assert!(t.gauge("level").peak() >= 1);
        let h = t.histogram("lat");
        assert_eq!(h.count(), threads * per_thread);
        let expected_sum: u64 = (0..per_thread).map(|i| i % 1000).sum::<u64>() * threads;
        assert_eq!(h.sum(), expected_sum);
    }

    #[test]
    fn histogram_percentiles_are_ordered_and_clamped() {
        let t = Telemetry::enabled();
        let h = t.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = (h.percentile(50.0), h.percentile(90.0), h.percentile(99.0));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // Log2 buckets: each percentile is within 2x of the true value.
        assert!((250..=1000).contains(&p50), "p50={p50}");
        assert!((500..=1000).contains(&p90), "p90={p90}");
        assert!(p99 <= 1000, "clamped to observed max, got {p99}");

        // Degenerate distribution reports exactly thanks to clamping.
        let one = t.histogram("single");
        one.record(77);
        assert_eq!(one.percentile(50.0), 77);
        assert_eq!(one.percentile(99.0), 77);

        // Empty histogram.
        assert_eq!(t.histogram("empty").percentile(50.0), 0);
    }

    #[test]
    fn spans_and_overlap_math() {
        let t = Telemetry::enabled();
        t.record_span("h2d-copy", "a", 0, 100);
        t.record_span("h2d-copy", "b", 50, 150); // overlaps a → union 150
        t.record_span("compute", "fp", 100, 300);
        assert_eq!(t.track_busy_nanos("h2d-copy"), 150);
        assert_eq!(t.track_busy_nanos("compute"), 200);
        assert_eq!(t.overlap_nanos("h2d-copy", "compute"), 50);
        let (copy, compute, ov) = t.copy_compute_overlap();
        assert_eq!((copy, compute, ov), (150, 200, 50));
        let snap = t.snapshot_json();
        assert_eq!(snap["overlap"]["overlap_ns"].as_u64(), Some(50));
        let eff = snap["overlap"]["overlap_efficiency"].as_f64().unwrap();
        assert!((eff - 50.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn virtual_clock_drives_spans() {
        let clock = Arc::new(VirtualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        clock.advance_to(1_000);
        let span = t.span("sim-compute", "fp L0");
        clock.advance_to(5_000);
        span.end();
        // Going backwards is ignored.
        clock.advance_to(2_000);
        assert_eq!(t.now_nanos(), 5_000);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start_ns, spans[0].end_ns), (1_000, 5_000));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let t = Telemetry::enabled();
        t.record_span("h2d-copy", "h2d L0", 0, 1000);
        t.record_span("compute", "fp L0", 500, 2000);
        let trace = t.to_chrome_trace();
        let v = serde_json::from_str(&trace).expect("valid JSON");
        let events = v["traceEvents"].as_array().expect("event array");
        // 2 thread_name metadata + 2 complete events.
        assert_eq!(events.len(), 4);
        assert!(events
            .iter()
            .any(|e| e["ph"] == "X" && e["name"] == "fp L0"));
        assert!(events.iter().any(|e| e["ph"] == "M"));
    }

    #[test]
    fn kernel_stats_bridge_publishes_gauges() {
        // Drive at least one kernel call so the global stats are nonzero.
        // (Stats are process-cumulative, so other tests only add to them.)
        let a = stronghold_tensor::tensor::Tensor::from_vec([2, 3], vec![1.; 6]);
        let b = stronghold_tensor::tensor::Tensor::from_vec([3, 2], vec![1.; 6]);
        let _ = stronghold_tensor::matmul::matmul(&a, &b);

        let t = Telemetry::enabled();
        record_kernel_stats(&t);
        assert!(t.gauge("kernel.nn.calls").get() >= 1);
        assert!(t.gauge("kernel.nn.flops").get() >= 2 * 2 * 3 * 2);
        let snap = t.snapshot_json();
        assert!(snap["gauges"]["kernel.nn.gflops_x100"]["value"]
            .as_f64()
            .is_some());
        assert!(snap["gauges"]["kernel.tn.calls"]["value"]
            .as_f64()
            .is_some());

        // Disabled handle: the bridge must stay inert.
        let d = Telemetry::disabled();
        record_kernel_stats(&d);
        assert_eq!(d.gauge("kernel.nn.calls").get(), 0);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let t = Telemetry::enabled();
        t.counter("prefetch_completed").add(7);
        t.histogram("lat").record(42);
        let s = serde_json::to_string_pretty(&t.snapshot_json()).unwrap();
        let back = serde_json::from_str(&s).unwrap();
        assert_eq!(back["counters"]["prefetch_completed"].as_u64(), Some(7));
        assert_eq!(back["histograms"]["lat"]["count"].as_u64(), Some(1));
    }
}
