//! The analytical offloading model (§III-D): derives the GPU working-window
//! size `m` from the warm-up profile.
//!
//! * **P1 (FP)**: minimize `m` s.t. the window's forward compute covers the
//!   next layer's fetch (1b), the window plus the incoming layer fit device
//!   memory (1c), and — soft — the window's compute covers *all* of its
//!   transfer traffic so buffers recycle on time (1d).
//! * **P2 (BP)**: the backward-direction twin (2b–2d).
//! * **Eq. (3)**: CPU-directed parameter updates must hide under remaining
//!   compute.
//! * **Eq. (4)/(5)**: the async-call overhead must be recouped by moving
//!   `n−m` layer updates off the GPU.
//!
//! Layers 0 (embedding) and `n−1` (head) are pinned in device memory and do
//! not participate in the window (Fig. 3).

use crate::profile::LayerProfile;
use stronghold_sim::SimTime;

/// The solver's decision plus diagnostics about which constraints hold.
#[derive(Clone, Debug)]
pub struct WindowPlan {
    /// Chosen window size (in offloadable layers).
    pub m: usize,
    /// Hard constraints (1b)(1c)/(2b)(2c) all satisfiable at this `m`.
    pub hard_feasible: bool,
    /// Soft constraints (1d)/(2d) also hold (full buffer-recycling overlap).
    pub soft_satisfied: bool,
    /// Eq. (3): every CPU layer update hides under compute.
    pub cpu_update_hidden: bool,
    /// Eq. (5): async overhead recouped by CPU-offloaded updates.
    pub async_overhead_ok: bool,
    /// Largest window the device memory admits (diagnostic).
    pub m_mem_max: usize,
}

/// Solves for the working window.
///
/// `gpu_usage(m)` must return the peak device bytes a window of `m` layers
/// implies (static residency + slots + workspace); `capacity` is usable
/// device memory. Returns `None` when not even `m = 1` fits.
pub fn solve_window(
    profile: &LayerProfile,
    gpu_usage: impl Fn(usize) -> u64,
    capacity: u64,
) -> Option<WindowPlan> {
    let n = profile.len();
    if n <= 2 {
        return None; // nothing offloadable
    }
    let first = 1usize; // first offloadable layer (0 = embedding, pinned)
    let last = n - 2; // last offloadable layer (n-1 = head, pinned)
    let count = last - first + 1;

    // Memory ceiling on m.
    let mut m_mem_max = 0usize;
    for m in 1..=count {
        if gpu_usage(m) <= capacity {
            m_mem_max = m;
        } else {
            break;
        }
    }
    if m_mem_max == 0 {
        return None;
    }

    let hard_ok =
        |m: usize| fp_hard_ok(profile, first, last, m) && bp_hard_ok(profile, first, last, m);
    let soft_ok =
        |m: usize| fp_soft_ok(profile, first, last, m) && bp_soft_ok(profile, first, last, m);

    // Minimal m meeting the hard constraints; prefer one that also meets the
    // soft constraints if memory admits it.
    let mut chosen = None;
    for m in 1..=m_mem_max {
        if hard_ok(m) {
            chosen = Some(m);
            break;
        }
    }
    let (m, hard_feasible) = match chosen {
        Some(m) => {
            let mut m_soft = m;
            while m_soft < m_mem_max && !soft_ok(m_soft) {
                m_soft += 1;
            }
            (if soft_ok(m_soft) { m_soft } else { m }, true)
        }
        // Constraints unsatisfiable: still train with the largest window
        // memory permits (§III-D "Determining the working window size").
        None => (m_mem_max, false),
    };

    Some(WindowPlan {
        m,
        hard_feasible,
        soft_satisfied: soft_ok(m),
        cpu_update_hidden: cpu_update_hidden(profile, first, last, m),
        async_overhead_ok: async_overhead_ok(profile, first, last, m),
        m_mem_max,
    })
}

/// (1b): for every window position, the window's FP compute covers fetching
/// the next layer outside it.
fn fp_hard_ok(p: &LayerProfile, first: usize, last: usize, m: usize) -> bool {
    for start in first..=last {
        let end = (start + m - 1).min(last);
        let j = end + 1;
        if j > last {
            break;
        }
        let window_fp: SimTime = (start..=end).fold(SimTime::ZERO, |a, i| a + p.t_fp[i]);
        if window_fp < p.t_c2g[j] {
            return false;
        }
    }
    true
}

/// (1d): window FP compute ≥ its own c2g + g2c traffic (buffer recycling).
fn fp_soft_ok(p: &LayerProfile, first: usize, last: usize, m: usize) -> bool {
    for start in first..=last.saturating_sub(m.saturating_sub(1)) {
        let end = (start + m - 1).min(last);
        let fp: SimTime = (start..=end).fold(SimTime::ZERO, |a, i| a + p.t_fp[i]);
        let traffic: SimTime =
            (start..=end).fold(SimTime::ZERO, |a, i| a + p.t_c2g[i] + p.t_g2c[i]);
        if fp < traffic {
            return false;
        }
    }
    true
}

/// (2b): the window's BP compute (m−1 layers of lookahead) covers offloading
/// the layer leaving it.
fn bp_hard_ok(p: &LayerProfile, first: usize, last: usize, m: usize) -> bool {
    for start in (first..=last).rev() {
        let low = start.saturating_sub(m - 1).max(first);
        let j = low.checked_sub(1);
        let Some(j) = j else { break };
        if j < first {
            break;
        }
        let window_bp: SimTime = (low..start).fold(SimTime::ZERO, |a, i| a + p.t_bp[i]);
        if window_bp < p.t_g2c[j] && m > 1 {
            return false;
        }
        if m == 1 && p.t_bp[start] < p.t_g2c[start] {
            return false;
        }
    }
    true
}

/// (2d): BP window compute covers its g2c + c2g traffic.
fn bp_soft_ok(p: &LayerProfile, first: usize, last: usize, m: usize) -> bool {
    let lo = first + m.saturating_sub(1);
    for start in (lo..=last).rev() {
        let low = start + 1 - m;
        let bp: SimTime = (low..=start).fold(SimTime::ZERO, |a, i| a + p.t_bp[i]);
        let traffic: SimTime =
            (low..=start).fold(SimTime::ZERO, |a, i| a + p.t_c2g[i] + p.t_g2c[i]);
        if bp < traffic {
            return false;
        }
    }
    true
}

/// Eq. (3): each CPU-updated layer's optimizer step hides under the compute
/// still outstanding when its gradients arrive.
fn cpu_update_hidden(p: &LayerProfile, first: usize, last: usize, m: usize) -> bool {
    let gpu_budget: SimTime =
        (first..(first + m).min(last + 1)).fold(SimTime::ZERO, |a, i| a + p.t_opt_gpu[i]);
    for k in (first + m)..=last {
        // When layer k's gradients land on the CPU, BP still has layers
        // first..k to process (they run after k in the backward direction).
        let remaining: SimTime = (first..k).fold(SimTime::ZERO, |a, i| a + p.t_bp[i]);
        if p.t_opt_cpu[k] > remaining + gpu_budget {
            return false;
        }
    }
    true
}

/// Eq. (5): `5·n·t_async ≤ Σ_{i=m..n} t_opt_gpu` — the async-call overhead
/// must be smaller than the GPU optimizer time saved by CPU offloading.
fn async_overhead_ok(p: &LayerProfile, first: usize, last: usize, m: usize) -> bool {
    let n = (last - first + 1) as u64;
    let overhead = p.t_async * (5 * n);
    let saved: SimTime =
        ((first + m).min(last + 1)..=last).fold(SimTime::ZERO, |a, i| a + p.t_opt_gpu[i]);
    overhead <= saved
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a homogeneous synthetic profile: n offloadable block layers
    /// plus pinned embedding/head stubs at the ends.
    fn synth(n: usize, fp_ms: u64, c2g_ms: u64, g2c_ms: u64) -> LayerProfile {
        let total = n + 2;
        let ms = SimTime::from_millis;
        LayerProfile {
            t_fp: vec![ms(fp_ms); total],
            t_bp: vec![ms(fp_ms * 3); total],
            t_c2g: vec![ms(c2g_ms); total],
            t_g2c: vec![ms(g2c_ms); total],
            s_fp: vec![100; total],
            s_bp: vec![200; total],
            t_opt_gpu: vec![ms(2); total],
            t_opt_cpu: vec![ms(20); total],
            t_async: SimTime::from_micros(100),
        }
    }

    #[test]
    fn fast_compute_gives_window_of_one() {
        // Compute 50ms vs fetch 10ms: m=1 satisfies 1b; soft needs
        // fp >= c2g+g2c = 25 < 50, also fine.
        let p = synth(20, 50, 10, 15);
        let plan = solve_window(&p, |_| 0, u64::MAX).unwrap();
        assert!(plan.hard_feasible);
        assert!(plan.soft_satisfied);
        assert_eq!(plan.m, 1);
    }

    #[test]
    fn slow_transfers_need_wider_window() {
        // Fetch 45ms vs compute 10ms: (1b) needs m*10 >= 45 -> m = 5.
        let p = synth(20, 10, 45, 5);
        let plan = solve_window(&p, |_| 0, u64::MAX).unwrap();
        assert!(plan.hard_feasible);
        assert!(plan.m >= 5, "m = {}", plan.m);
    }

    #[test]
    fn soft_constraint_widens_window() {
        // Hard: fetch 10 <= fp 12 at m=1. Soft: fp*m >= (c2g+g2c)*m fails
        // for every m (12 < 10+8=18) -> stays at minimal hard m but reports
        // soft unsatisfied.
        let p = synth(20, 12, 10, 8);
        let plan = solve_window(&p, |_| 0, u64::MAX).unwrap();
        assert!(plan.hard_feasible);
        assert!(!plan.soft_satisfied);
    }

    #[test]
    fn memory_caps_window() {
        // Transfers demand m = 5 but memory only fits 3 slots.
        let p = synth(20, 10, 45, 5);
        let plan = solve_window(&p, |m| m as u64 * 10, 30).unwrap();
        assert_eq!(plan.m_mem_max, 3);
        assert_eq!(plan.m, 3);
        assert!(!plan.hard_feasible, "must fall back to best-effort window");
    }

    #[test]
    fn no_window_fits_returns_none() {
        let p = synth(4, 10, 10, 10);
        assert!(solve_window(&p, |m| m as u64 * 100, 50).is_none());
    }

    #[test]
    fn cpu_update_hiding_detects_slow_cpu() {
        let mut p = synth(10, 10, 5, 5);
        // Absurdly slow CPU optimizer: cannot hide.
        p.t_opt_cpu = vec![SimTime::from_millis(100_000); 12];
        let plan = solve_window(&p, |_| 0, u64::MAX).unwrap();
        assert!(!plan.cpu_update_hidden);
    }

    #[test]
    fn async_overhead_check() {
        let mut p = synth(10, 10, 5, 5);
        // Huge t_async: offloading cannot pay for itself.
        p.t_async = SimTime::from_millis(50);
        let plan = solve_window(&p, |_| 0, u64::MAX).unwrap();
        assert!(!plan.async_overhead_ok);
    }

    #[test]
    fn tiny_models_have_no_window() {
        let p = synth(0, 10, 5, 5);
        assert!(solve_window(&p, |_| 0, u64::MAX).is_none());
    }

    #[test]
    fn monotone_in_memory() {
        // More memory never yields a smaller m_mem_max.
        let p = synth(20, 10, 45, 5);
        let a = solve_window(&p, |m| m as u64 * 10, 40).unwrap();
        let b = solve_window(&p, |m| m as u64 * 10, 200).unwrap();
        assert!(b.m_mem_max >= a.m_mem_max);
    }
}
