//! The user-facing STRONGHOLD facade.
//!
//! Mirrors the paper's deployment story: the user wraps a model exactly as
//! they would for data-parallel PyTorch training — no code refactoring — and
//! the runtime derives everything else (window size, stream count, cold
//! tier) during warm-up.

use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

use crate::analytic::WindowPlan;
use crate::error::Result;
use crate::memplan::{ColdTier, StrongholdMemPlan};
use crate::method::{IterationReport, TrainingMethod};
use crate::multistream::choose_streams;
use crate::offload::{derive_window, simulate_iteration, OffloadOptions};
use crate::profile::LayerProfile;

/// User-visible runtime options (all optional; the warm-up phase fills in
/// whatever the user leaves unspecified).
#[derive(Clone, Copy, Debug, Default)]
pub struct StrongholdOptions {
    /// Fixed working-window size; `None` = analytic (§III-D).
    pub window: Option<usize>,
    /// Fixed stream count; `None` = chosen during warm-up (§IV-A).
    pub streams: Option<usize>,
    /// Enable the NVMe tier with this CPU staging cache (§III-G).
    pub nvme_cache_layers: Option<usize>,
    /// Disable §III-E1 (ablation).
    pub disable_concurrent_optimizers: bool,
    /// Disable §III-E3 (ablation).
    pub disable_pooled_allocator: bool,
    /// Activation-checkpoint interval in layers (0/1 = layer-wise).
    pub ckpt_interval: usize,
}

/// The STRONGHOLD training method.
///
/// # Examples
///
/// Train the paper's headline 39.4B model on a simulated 32 GB V100:
///
/// ```
/// use stronghold_core::{Stronghold, TrainingMethod};
/// use stronghold_model::config::model_39_4b;
/// use stronghold_sim::Platform;
///
/// let v100 = Platform::v100_server();
/// let sh = Stronghold::new();
/// assert!(sh.feasible(&model_39_4b(), &v100));
/// let report = sh.iteration(&model_39_4b(), &v100).unwrap();
/// assert!(report.throughput > 0.0);
/// assert!(report.gpu_peak < 32 * (1 << 30)); // fits the device
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Stronghold {
    /// Runtime options.
    pub opts: StrongholdOptions,
}

impl Stronghold {
    /// Default runtime (everything auto-tuned).
    pub fn new() -> Self {
        Stronghold::default()
    }

    /// Runtime with explicit options.
    pub fn with_options(opts: StrongholdOptions) -> Self {
        Stronghold { opts }
    }

    fn cold_tier(&self) -> ColdTier {
        match self.opts.nvme_cache_layers {
            Some(c) => ColdTier::Nvme {
                cpu_cache_layers: c,
            },
            None => ColdTier::CpuRam,
        }
    }

    fn offload_options(&self, streams: usize) -> OffloadOptions {
        OffloadOptions {
            window: self.opts.window,
            streams,
            cold_tier: self.cold_tier(),
            concurrent_optimizers: !self.opts.disable_concurrent_optimizers,
            pooled_allocator: !self.opts.disable_pooled_allocator,
            ckpt_interval: self.opts.ckpt_interval.max(1),
        }
    }

    /// Runs the warm-up phase: profiles layers, solves the window, picks the
    /// stream count. Returns `(window, streams, diagnostics)`.
    pub fn warmup(
        &self,
        cfg: &ModelConfig,
        platform: &Platform,
    ) -> Result<(usize, usize, Option<WindowPlan>)> {
        let base = self.offload_options(1);
        let window = derive_window(cfg, platform, &base)?;
        let streams = match self.opts.streams {
            Some(k) => k,
            None => choose_streams(cfg, platform, &base)?,
        };
        // Re-derive diagnostics for reporting.
        let plan = StrongholdMemPlan::new(*cfg, streams, self.cold_tier());
        let cost = stronghold_sim::CostModel::new(*platform);
        let profile = LayerProfile::from_cost_model(plan.layers(), &cost, cfg.batch);
        let diag = crate::analytic::solve_window(
            &profile,
            |m| plan.gpu_usage(m),
            StrongholdMemPlan::gpu_capacity(platform),
        );
        Ok((window, streams, diag))
    }
}

impl TrainingMethod for Stronghold {
    fn name(&self) -> &'static str {
        "STRONGHOLD"
    }

    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool {
        let plan = StrongholdMemPlan::new(*cfg, 1, self.cold_tier());
        plan.feasible(platform, 1)
    }

    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        let streams = match self.opts.streams {
            Some(k) => k,
            None => choose_streams(cfg, platform, &self.offload_options(1))?,
        };
        simulate_iteration(cfg, platform, &self.offload_options(streams))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::max_trainable_layers;
    use stronghold_model::config::{common_1_7b, ModelConfig};

    #[test]
    fn warmup_produces_plan() {
        let sh = Stronghold::new();
        let (window, streams, diag) = sh.warmup(&common_1_7b(), &Platform::v100_server()).unwrap();
        assert!(window >= 1);
        assert!(streams >= 1);
        let diag = diag.unwrap();
        assert!(diag.hard_feasible);
    }

    #[test]
    fn headline_max_size_on_v100_matches_paper() {
        // Fig. 6a: STRONGHOLD trains ~39.5B on the 32 GB V100 + 755 GB host.
        let sh = Stronghold::new();
        let base = ModelConfig::new(1, 2560, 16);
        let best = max_trainable_layers(&sh, &base, &Platform::v100_server(), 4000).unwrap();
        let billions = best.billions();
        assert!(
            (36.0..44.0).contains(&billions),
            "STRONGHOLD V100 ceiling {billions:.1}B, paper reports 39.5B"
        );
    }

    #[test]
    fn nvme_extends_the_ceiling() {
        // Fig. 10: with NVMe both STRONGHOLD and ZeRO-Infinity reach ~0.5T.
        let ram_only = Stronghold::new();
        let nvme = Stronghold::with_options(StrongholdOptions {
            nvme_cache_layers: Some(64),
            ..StrongholdOptions::default()
        });
        let base = ModelConfig::new(1, 2560, 16);
        let v100 = Platform::v100_server();
        let cap_ram = max_trainable_layers(&ram_only, &base, &v100, 8000).unwrap();
        let cap_nvme = max_trainable_layers(&nvme, &base, &v100, 8000).unwrap();
        assert!(
            cap_nvme.billions() > 4.0 * cap_ram.billions(),
            "nvme {:.1}B vs ram {:.1}B",
            cap_nvme.billions(),
            cap_ram.billions()
        );
    }

    #[test]
    fn iteration_through_trait() {
        let sh = Stronghold::new();
        let r = sh
            .iteration(&common_1_7b(), &Platform::v100_server())
            .unwrap();
        assert_eq!(r.method, "STRONGHOLD");
        assert!(r.throughput > 0.0);
    }
}
