//! Forward-only execution for knowledge distillation (§VI-D3, Fig. 13).
//!
//! A trained teacher only runs FP to expose layer-wise activations to the
//! student, so the working window carries parameters alone — no gradients,
//! no optimizer state — letting STRONGHOLD serve a much larger model than
//! it can train. This module prices that schedule and its memory plan.

use stronghold_model::config::ModelConfig;
use stronghold_model::layer::build_layers;
use stronghold_model::memory;
use stronghold_sim::cost::CopyKind;
use stronghold_sim::{CostModel, FifoResource, Lane, Platform, SimTime, Timeline};

use crate::error::{Result, RuntimeError};
use crate::memplan::StrongholdMemPlan;
use crate::method::IterationReport;

/// Device bytes an inference window of `m` layers needs: pinned
/// embedding/head parameters, `m+1` parameter slots, workspace and the
/// per-layer hidden states handed to the student.
pub fn inference_gpu_usage(cfg: &ModelConfig, m: usize) -> u64 {
    let layers = build_layers(cfg);
    let batch = cfg.batch as u64;
    let resident: u64 = layers
        .iter()
        .filter(|l| l.kind != stronghold_model::layer::LayerKind::Block)
        .map(|l| l.param_bytes())
        .sum();
    let block = layers
        .iter()
        .filter(|l| l.kind == stronghold_model::layer::LayerKind::Block)
        .max_by_key(|l| l.params);
    let Some(block) = block else { return resident };
    let slots = (m as u64 + 1) * block.param_bytes();
    let workspace = block.act_workspace_bytes * batch;
    let hidden = memory::boundary_activation_bytes(cfg) * batch * 2;
    resident + slots + workspace + hidden
}

/// Whether FP-only serving of `cfg` fits the platform.
pub fn inference_feasible(cfg: &ModelConfig, platform: &Platform) -> bool {
    let cap = StrongholdMemPlan::gpu_capacity(platform);
    if inference_gpu_usage(cfg, 1) > cap {
        return false;
    }
    // Host holds parameters only (4 bytes/param) for inference.
    let params: u64 = build_layers(cfg).iter().map(|l| l.param_bytes()).sum();
    params <= StrongholdMemPlan::cpu_capacity(platform)
}

/// Simulates one FP-only pass (teacher inference) with window `m`.
pub fn simulate_inference(
    cfg: &ModelConfig,
    platform: &Platform,
    m: usize,
) -> Result<IterationReport> {
    if !inference_feasible(cfg, platform) {
        return Err(RuntimeError::Infeasible {
            method: "STRONGHOLD-inference".into(),
            reason: "model exceeds platform".into(),
        });
    }
    let cap = StrongholdMemPlan::gpu_capacity(platform);
    let mut m = m.max(1);
    while m > 1 && inference_gpu_usage(cfg, m) > cap {
        m -= 1;
    }
    if inference_gpu_usage(cfg, m) > cap {
        return Err(RuntimeError::Infeasible {
            method: "STRONGHOLD-inference".into(),
            reason: "window of one exceeds device".into(),
        });
    }

    let cost = CostModel::new(*platform);
    let layers = build_layers(cfg);
    let nb = cfg.layers;
    let mut compute = FifoResource::new("compute");
    let mut h2d = FifoResource::new("h2d");
    let mut tl = Timeline::new();
    let zero = SimTime::ZERO;
    let t_async = cost.t_async();
    let nl = layers.len();
    let mut fp_end = vec![zero; nl];
    let mut ci = vec![zero; nl];

    // First m blocks preloaded; the rest stream through the window.
    for i in 0..nl {
        let j = i + m;
        if (m + 1..=nb).contains(&j) && (1..=nb).contains(&i) {
            let hook = fp_end[i.saturating_sub(1)] + t_async;
            let slot = if j >= 2 * m + 2 {
                fp_end[j - m - 1]
            } else {
                zero
            };
            let dur = cost.h2d(layers[j].param_bytes(), CopyKind::PinnedBulk);
            let (s, e) = h2d.schedule(hook.max(slot), dur);
            ci[j] = e;
            tl.record(Lane::CopyIn, format!("h2d L{j}"), s, e);
        }
        let prev = if i > 0 { fp_end[i - 1] } else { zero };
        let (s, e) = compute.schedule(prev.max(ci[i]), cost.layer_fp(&layers[i], cfg.batch));
        fp_end[i] = e;
        tl.record(Lane::Compute(0), format!("fp L{i}"), s, e);
    }

    let iter_time = tl.makespan();
    let fp_flops: u64 = layers.iter().map(|l| l.flops_fp).sum();
    tl.assert_lanes_serialized();
    let report = IterationReport {
        method: "STRONGHOLD-inference".into(),
        cfg: *cfg,
        iter_time,
        throughput: 0.0,
        tflops: 0.0,
        gpu_peak: inference_gpu_usage(cfg, m),
        cpu_peak: build_layers(cfg).iter().map(|l| l.param_bytes()).sum(),
        overlap: tl.overlap_fraction(),
        gpu_util: tl.utilization(Lane::Compute(0)),
        timeline: tl,
        window: m,
    };
    Ok(report.finish(fp_flops, cfg.batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::{common_1_7b, ModelConfig};

    #[test]
    fn inference_serves_larger_models_than_training() {
        // §VI-D3: FP-only mode supports a larger model than training.
        let v100 = Platform::v100_server();
        let big = ModelConfig::new(700, 2560, 16); // ~55B: training infeasible
        let train_plan = StrongholdMemPlan::new(big, 1, crate::memplan::ColdTier::CpuRam);
        assert!(!train_plan.feasible(&v100, 1));
        assert!(inference_feasible(&big, &v100));
    }

    #[test]
    fn inference_runs_and_reports() {
        let r = simulate_inference(&common_1_7b(), &Platform::v100_server(), 4).unwrap();
        assert!(r.iter_time > SimTime::ZERO);
        assert!(r.throughput > 0.0);
        assert!(r.gpu_peak < 32 << 30);
    }

    #[test]
    fn inference_time_scales_linearly_with_depth() {
        let v100 = Platform::v100_server();
        let t1 = simulate_inference(&common_1_7b(), &v100, 4)
            .unwrap()
            .iter_time;
        let mut deep = common_1_7b();
        deep.layers *= 4;
        let t4 = simulate_inference(&deep, &v100, 4).unwrap().iter_time;
        let ratio = t4.as_secs_f64() / t1.as_secs_f64();
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn usage_monotone_in_window() {
        let cfg = common_1_7b();
        assert!(inference_gpu_usage(&cfg, 2) < inference_gpu_usage(&cfg, 6));
    }
}
