//! Warm-up profiling (§III-B).
//!
//! During the first few training iterations STRONGHOLD measures, per layer:
//! GPU compute time for FP and BP, CPU↔GPU transfer times for the layer's
//! model state, and optimizer update times. The [`analytic`](crate::analytic)
//! window solver consumes this profile. On the simulator the "measurement"
//! prices the warm-up iterations through the cost model — exactly what a real
//! profiler would observe; on the functional substrate the profile is built
//! from wall-clock measurements.

use stronghold_model::layer::LayerSpec;
use stronghold_sim::cost::CopyKind;
use stronghold_sim::{CostModel, SimTime};

/// Per-layer timing and sizing profile collected during warm-up.
#[derive(Clone, Debug)]
pub struct LayerProfile {
    /// Forward compute time per layer.
    pub t_fp: Vec<SimTime>,
    /// Backward compute time per layer (includes checkpoint recompute).
    pub t_bp: Vec<SimTime>,
    /// CPU→GPU transfer time of the layer's FP state (parameters [+ saved
    /// input during BP prefetch]).
    pub t_c2g: Vec<SimTime>,
    /// GPU→CPU transfer time of the layer's BP state (parameters+gradients).
    pub t_g2c: Vec<SimTime>,
    /// Bytes resident per layer during FP (the `s_fp` of P1).
    pub s_fp: Vec<u64>,
    /// Bytes resident per layer during BP (the `s_bp` of P2).
    pub s_bp: Vec<u64>,
    /// On-GPU optimizer step time per layer.
    pub t_opt_gpu: Vec<SimTime>,
    /// CPU optimizer step time per layer (one pool worker).
    pub t_opt_cpu: Vec<SimTime>,
    /// Asynchronous call overhead (`t_async`).
    pub t_async: SimTime,
}

impl LayerProfile {
    /// Number of layers profiled.
    pub fn len(&self) -> usize {
        self.t_fp.len()
    }

    /// True if the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.t_fp.is_empty()
    }

    /// Builds the profile the warm-up phase would observe on the simulator:
    /// per-layer costs priced by the platform cost model at `batch`.
    ///
    /// Only offloadable layers are profiled (the runtime pins the first and
    /// last layers — embedding and head — in device memory, Fig. 3), but the
    /// vectors cover all layers so indices line up with the layer list.
    pub fn from_cost_model(layers: &[LayerSpec], cost: &CostModel, batch: usize) -> Self {
        let act = |l: &LayerSpec| l.act_checkpoint_bytes * batch as u64;
        LayerProfile {
            t_fp: layers.iter().map(|l| cost.layer_fp(l, batch)).collect(),
            t_bp: layers.iter().map(|l| cost.layer_bp(l, batch)).collect(),
            t_c2g: layers
                .iter()
                .map(|l| cost.h2d(l.param_bytes() + act(l), CopyKind::PinnedBulk))
                .collect(),
            t_g2c: layers
                .iter()
                .map(|l| cost.d2h(l.bp_state_bytes() + act(l), CopyKind::PinnedBulk))
                .collect(),
            s_fp: layers.iter().map(|l| l.param_bytes() + act(l)).collect(),
            s_bp: layers.iter().map(|l| l.bp_state_bytes() + act(l)).collect(),
            t_opt_gpu: layers.iter().map(|l| cost.gpu_optim(l)).collect(),
            t_opt_cpu: layers.iter().map(|l| cost.cpu_optim(l)).collect(),
            t_async: cost.t_async(),
        }
    }

    /// Total FP compute time across layers.
    pub fn total_fp(&self) -> SimTime {
        self.t_fp.iter().fold(SimTime::ZERO, |a, t| a + *t)
    }

    /// Total BP compute time across layers.
    pub fn total_bp(&self) -> SimTime {
        self.t_bp.iter().fold(SimTime::ZERO, |a, t| a + *t)
    }
}

/// Number of warm-up iterations profiled before the window is derived
/// (paper default, §III-B: 5).
pub const WARMUP_ITERATIONS: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::common_1_7b;
    use stronghold_model::layer::build_layers;
    use stronghold_sim::Platform;

    fn profile() -> LayerProfile {
        let cfg = common_1_7b();
        let layers = build_layers(&cfg);
        let cost = CostModel::new(Platform::v100_server());
        LayerProfile::from_cost_model(&layers, &cost, cfg.batch)
    }

    #[test]
    fn covers_all_layers() {
        let p = profile();
        assert_eq!(p.len(), 22); // 20 blocks + embedding + head
        assert!(!p.is_empty());
    }

    #[test]
    fn bp_state_larger_than_fp_state() {
        let p = profile();
        for i in 1..p.len() - 1 {
            assert!(p.s_bp[i] > p.s_fp[i], "layer {i}");
            assert!(p.t_g2c[i] > p.t_c2g[i], "layer {i}");
        }
    }

    #[test]
    fn block_layers_homogeneous() {
        let p = profile();
        assert_eq!(p.t_fp[1], p.t_fp[10]);
        assert_eq!(p.t_c2g[1], p.t_c2g[10]);
    }

    #[test]
    fn totals_add_up() {
        let p = profile();
        let manual = p.t_fp.iter().fold(SimTime::ZERO, |a, t| a + *t);
        assert_eq!(p.total_fp(), manual);
        assert!(p.total_bp() > p.total_fp());
    }
}
