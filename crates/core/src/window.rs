//! Working-window bookkeeping (§III-C, Fig. 2/3).
//!
//! Tracks which layers currently occupy device slots as the window slides
//! along the FP or BP direction. The same state machine drives both the
//! functional executor (slots hold real tensors) and the simulated one
//! (slots hold byte sizes).

/// Direction the window slides in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Forward propagation: window moves toward deeper layers.
    Forward,
    /// Backward propagation: window moves toward shallower layers.
    Backward,
}

/// The working window: `m` device slots over the offloadable layer range.
#[derive(Clone, Debug)]
pub struct WorkingWindow {
    /// `slots[s] = Some(layer)` when slot `s` holds `layer`'s state.
    slots: Vec<Option<usize>>,
    /// Next slot considered by the round-robin allocator (§III-E3: buffers
    /// are recycled "in a round-robin manner").
    rr_cursor: usize,
    /// Total admissions (diagnostics).
    admissions: u64,
    /// Total evictions (diagnostics).
    evictions: u64,
}

impl WorkingWindow {
    /// Creates a window with `m` empty slots.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "window must have at least one slot");
        WorkingWindow {
            slots: vec![None; m],
            rr_cursor: 0,
            admissions: 0,
            evictions: 0,
        }
    }

    /// Window capacity `m`.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `layer` is resident.
    pub fn contains(&self, layer: usize) -> bool {
        self.slots.contains(&Some(layer))
    }

    /// Slot currently holding `layer`, if resident.
    pub fn slot_of(&self, layer: usize) -> Option<usize> {
        self.slots.iter().position(|s| *s == Some(layer))
    }

    /// Admits `layer` into the next free slot (round-robin from the cursor).
    /// Returns the slot index.
    ///
    /// # Panics
    /// Panics if the window is full or the layer is already resident —
    /// both indicate scheduler bugs, which the tests assert against.
    pub fn admit(&mut self, layer: usize) -> usize {
        assert!(!self.contains(layer), "layer {layer} already resident");
        let m = self.slots.len();
        for k in 0..m {
            let s = (self.rr_cursor + k) % m;
            if self.slots[s].is_none() {
                self.slots[s] = Some(layer);
                self.rr_cursor = (s + 1) % m;
                self.admissions += 1;
                return s;
            }
        }
        panic!("working window full: cannot admit layer {layer}");
    }

    /// Evicts `layer`, freeing its slot. Returns the slot index.
    ///
    /// # Panics
    /// Panics if the layer is not resident.
    pub fn evict(&mut self, layer: usize) -> usize {
        let s = self
            .slot_of(layer)
            .unwrap_or_else(|| panic!("evicting non-resident layer {layer}"));
        self.slots[s] = None;
        self.evictions += 1;
        s
    }

    /// Resident layers in slot order (diagnostics).
    pub fn resident(&self) -> Vec<usize> {
        self.slots.iter().flatten().copied().collect()
    }

    /// Lifetime admission count.
    pub fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn admit_until_full_then_slide() {
        let mut w = WorkingWindow::new(3);
        assert_eq!(w.admit(0), 0);
        assert_eq!(w.admit(1), 1);
        assert_eq!(w.admit(2), 2);
        assert_eq!(w.len(), 3);
        // Slide: evict 0, admit 3 -> takes slot 0 (round robin wraps).
        assert_eq!(w.evict(0), 0);
        assert_eq!(w.admit(3), 0);
        assert!(w.contains(3));
        assert!(!w.contains(0));
    }

    #[test]
    fn round_robin_recycling_order() {
        let mut w = WorkingWindow::new(2);
        w.admit(10);
        w.admit(11);
        w.evict(10);
        w.evict(11);
        // Cursor points past slot 1, so the next admissions wrap to 0 then 1.
        assert_eq!(w.admit(12), 0);
        assert_eq!(w.admit(13), 1);
    }

    #[test]
    #[should_panic(expected = "window full")]
    fn overfull_panics() {
        let mut w = WorkingWindow::new(1);
        w.admit(0);
        w.admit(1);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_admit_panics() {
        let mut w = WorkingWindow::new(2);
        w.admit(5);
        w.admit(5);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn evict_missing_panics() {
        let mut w = WorkingWindow::new(2);
        w.evict(9);
    }

    proptest! {
        /// Sliding a window over any layer sequence never exceeds capacity
        /// and always keeps exactly the trailing m layers resident.
        #[test]
        fn prop_sliding_keeps_trailing_m(n in 1usize..60, m in 1usize..8) {
            let m = m.min(n);
            let mut w = WorkingWindow::new(m);
            for layer in 0..n {
                if layer >= m {
                    w.evict(layer - m);
                }
                w.admit(layer);
                prop_assert!(w.len() <= m);
                let mut expect: Vec<usize> = (layer.saturating_sub(m - 1)..=layer).collect();
                let mut got = w.resident();
                got.sort_unstable();
                expect.sort_unstable();
                prop_assert_eq!(got, expect);
            }
            prop_assert_eq!(w.admissions(), n as u64);
        }
    }
}
