//! The hook mechanism (§III-C): STRONGHOLD attaches `pre_forward` /
//! `post_forward` / `pre_backward` / `post_backward` callbacks to each layer
//! "through the hooking mechanism provided by mainstream deep learning
//! frameworks" — which is what makes the runtime usable *without user code
//! refactoring*.
//!
//! This module is that mechanism: a per-layer registry of callbacks the
//! training loop fires at the four pipeline points. The offloading engine
//! registers its prefetch/offload/optimizer-dispatch actions here; user code
//! can add its own observers (profiling, logging) without touching the
//! model.

use std::collections::BTreeMap;

/// The four pipeline points a layer exposes (Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HookPoint {
    /// Before a layer's forward compute (issues the FP prefetch, step ①).
    PreForward,
    /// After a layer's forward compute (issues the FP offload, step ③).
    PostForward,
    /// Before a layer's backward compute (issues BP prefetch + offload +
    /// optimizer dispatch, steps ①–③ of Fig. 3c).
    PreBackward,
    /// After a layer's backward compute.
    PostBackward,
    /// After a full optimizer step (clip + LR schedule + parameter update)
    /// has been dispatched. Fired once per iteration on the pseudo-layer
    /// [`STEP_SCOPE`], not per layer.
    PostStep,
}

/// Pseudo-layer index for step-granularity hooks: [`HookPoint::PostStep`]
/// callbacks are registered and fired on this index, far outside any real
/// layer range.
pub const STEP_SCOPE: usize = usize::MAX;

/// Context handed to every hook invocation.
#[derive(Clone, Copy, Debug)]
pub struct HookCtx {
    /// Layer index in execution order.
    pub layer: usize,
    /// Training iteration number.
    pub iteration: u64,
    /// Micro-batch index within the iteration.
    pub micro_batch: usize,
}

type Hook = Box<dyn FnMut(&HookCtx) + Send>;

/// A per-layer registry of pipeline callbacks.
#[derive(Default)]
pub struct HookRegistry {
    hooks: BTreeMap<(usize, HookPoint), Vec<Hook>>,
    fired: u64,
}

impl HookRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        HookRegistry::default()
    }

    /// Registers a callback for `(layer, point)`. Multiple callbacks on the
    /// same point fire in registration order.
    pub fn register(
        &mut self,
        layer: usize,
        point: HookPoint,
        hook: impl FnMut(&HookCtx) + Send + 'static,
    ) {
        self.hooks
            .entry((layer, point))
            .or_default()
            .push(Box::new(hook));
    }

    /// Registers the same callback constructor on a range of layers.
    pub fn register_range(
        &mut self,
        layers: std::ops::Range<usize>,
        point: HookPoint,
        mut make: impl FnMut(usize) -> Hook,
    ) {
        for l in layers {
            self.hooks.entry((l, point)).or_default().push(make(l));
        }
    }

    /// Registers a step-granularity callback fired once per iteration after
    /// the optimizer dispatch (see [`HookPoint::PostStep`]).
    pub fn register_post_step(&mut self, hook: impl FnMut(&HookCtx) + Send + 'static) {
        self.register(STEP_SCOPE, HookPoint::PostStep, hook);
    }

    /// Fires all callbacks for `(layer, point)`.
    pub fn fire(&mut self, layer: usize, point: HookPoint, ctx: &HookCtx) {
        if let Some(hooks) = self.hooks.get_mut(&(layer, point)) {
            for h in hooks {
                h(ctx);
                self.fired += 1;
            }
        }
    }

    /// Number of callbacks registered on a point.
    pub fn count(&self, layer: usize, point: HookPoint) -> usize {
        self.hooks.get(&(layer, point)).map_or(0, Vec::len)
    }

    /// Total invocations so far (matches the `t_async` accounting of
    /// §III-D: 2 calls per layer in FP, 3 in BP).
    pub fn invocations(&self) -> u64 {
        self.fired
    }
}

/// Async-call count per layer during FP, from §III-D ("The FP computation
/// time for one layer is `t_fp + 2 t_async`").
pub const FP_ASYNC_CALLS_PER_LAYER: u64 = 2;
/// Async-call count per layer during BP (`t_fp + 3 t_async`).
pub const BP_ASYNC_CALLS_PER_LAYER: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn hooks_fire_in_registration_order() {
        let mut reg = HookRegistry::new();
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for tag in ["first", "second"] {
            let log2 = Arc::clone(&log);
            reg.register(3, HookPoint::PreForward, move |ctx| {
                log2.lock().push((tag, ctx.layer));
            });
        }
        reg.fire(
            3,
            HookPoint::PreForward,
            &HookCtx {
                layer: 3,
                iteration: 0,
                micro_batch: 0,
            },
        );
        assert_eq!(*log.lock(), vec![("first", 3), ("second", 3)]);
        assert_eq!(reg.invocations(), 2);
    }

    #[test]
    fn unregistered_points_are_silent() {
        let mut reg = HookRegistry::new();
        reg.fire(
            0,
            HookPoint::PostBackward,
            &HookCtx {
                layer: 0,
                iteration: 0,
                micro_batch: 0,
            },
        );
        assert_eq!(reg.invocations(), 0);
    }

    #[test]
    fn range_registration_covers_each_layer() {
        let mut reg = HookRegistry::new();
        let count = Arc::new(AtomicUsize::new(0));
        reg.register_range(0..5, HookPoint::PostForward, |_layer| {
            let c = Arc::clone(&count);
            Box::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            })
        });
        for l in 0..5 {
            assert_eq!(reg.count(l, HookPoint::PostForward), 1);
            reg.fire(
                l,
                HookPoint::PostForward,
                &HookCtx {
                    layer: l,
                    iteration: 1,
                    micro_batch: 0,
                },
            );
        }
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn simulated_training_loop_fires_paper_call_counts() {
        // One FP + BP sweep over n layers must fire 2n + 3n hook calls —
        // the 5·n·t_async of Eq. (4).
        let n = 7;
        let mut reg = HookRegistry::new();
        for l in 0..n {
            reg.register(l, HookPoint::PreForward, |_| {});
            reg.register(l, HookPoint::PostForward, |_| {});
            reg.register(l, HookPoint::PreBackward, |_| {});
            reg.register(l, HookPoint::PreBackward, |_| {});
            reg.register(l, HookPoint::PreBackward, |_| {});
        }
        let ctx = |l| HookCtx {
            layer: l,
            iteration: 0,
            micro_batch: 0,
        };
        for l in 0..n {
            reg.fire(l, HookPoint::PreForward, &ctx(l));
            reg.fire(l, HookPoint::PostForward, &ctx(l));
        }
        for l in (0..n).rev() {
            reg.fire(l, HookPoint::PreBackward, &ctx(l));
        }
        assert_eq!(
            reg.invocations(),
            (FP_ASYNC_CALLS_PER_LAYER + BP_ASYNC_CALLS_PER_LAYER) * n as u64
        );
    }
}
