//! STRONGHOLD's memory placement plan: what lives where, as a function of
//! the working-window size. Feeds both the analytic solver's memory
//! constraint (1c)/(2c) and the largest-trainable-model searches.

use stronghold_model::config::ModelConfig;
use stronghold_model::layer::{build_layers, LayerKind, LayerSpec};
use stronghold_model::memory;
use stronghold_sim::calibration as cal;
use stronghold_sim::Platform;

/// Window sizing policy (§III-D, "Determining the working window size").
///
/// The default gives every layer a dedicated slot, which "improves GPU
/// cache locality for Transformer-based models that have a large number of
/// identical layer structures". `FixedBytes` instead reserves one byte
/// budget in which the number of resident layers changes dynamically —
/// the user-enabled mode for models with heterogeneous layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowPolicy {
    /// `m` uniform slots sized for the largest layer (the default).
    FixedLayers(usize),
    /// A fixed device-byte budget; layer count inside it varies.
    FixedBytes(u64),
}

impl WindowPolicy {
    /// The number of layers of `layer_bytes` each this policy admits
    /// simultaneously (the effective `m` for scheduling).
    pub fn layers_admitted(&self, layer_bytes: &[u64]) -> usize {
        match *self {
            WindowPolicy::FixedLayers(m) => m,
            WindowPolicy::FixedBytes(budget) => {
                // Greedy fill in execution order — the window slides, so the
                // binding case is the densest run of consecutive layers; for
                // a conservative bound use the *largest* layers first.
                let mut sizes: Vec<u64> = layer_bytes.to_vec();
                sizes.sort_unstable_by(|a, b| b.cmp(a));
                let mut used = 0u64;
                let mut count = 0usize;
                for s in sizes {
                    if used + s > budget {
                        break;
                    }
                    used += s;
                    count += 1;
                }
                count
            }
        }
    }

    /// Device bytes this policy reserves given per-layer slot sizes.
    pub fn reserved_bytes(&self, layer_bytes: &[u64]) -> u64 {
        match *self {
            WindowPolicy::FixedLayers(m) => {
                let max = layer_bytes.iter().copied().max().unwrap_or(0);
                m as u64 * max
            }
            WindowPolicy::FixedBytes(budget) => budget,
        }
    }
}

/// Where the cold tier of layer states lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColdTier {
    /// All non-resident layer states in (pinned) CPU RAM.
    CpuRam,
    /// Layer states on NVMe, with a CPU staging cache (§III-G).
    Nvme {
        /// Number of layer states kept staged in CPU RAM.
        cpu_cache_layers: usize,
    },
}

/// The memory plan of one STRONGHOLD configuration.
#[derive(Clone, Debug)]
pub struct StrongholdMemPlan {
    layers: Vec<LayerSpec>,
    cfg: ModelConfig,
    /// Concurrent training streams (§IV-A); 1 = single executor.
    pub streams: usize,
    /// Cold-tier placement.
    pub cold_tier: ColdTier,
}

impl StrongholdMemPlan {
    /// Builds the plan for a configuration.
    pub fn new(cfg: ModelConfig, streams: usize, cold_tier: ColdTier) -> Self {
        StrongholdMemPlan {
            layers: build_layers(&cfg),
            cfg,
            streams: streams.max(1),
            cold_tier,
        }
    }

    /// Layer specs in execution order.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    fn pinned_layers(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Embedding | LayerKind::Head))
    }

    fn blocks(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(|l| l.kind == LayerKind::Block)
    }

    /// A representative (largest) offloadable layer.
    pub fn max_block(&self) -> Option<&LayerSpec> {
        self.blocks().max_by_key(|l| l.params)
    }

    /// Device bytes needed for a working window of `m` layers.
    ///
    /// Components (Fig. 3 + §III-E1/E3):
    /// * pinned embedding + head layers with full state (GPU-updated);
    /// * the *first window*: `m` layers kept resident across the BP→FP
    ///   boundary with full state (their optimizer runs on the GPU);
    /// * `m` sliding slots sized for the BP worst case (params + grads +
    ///   the layer's activation checkpoint) plus one incoming-layer buffer
    ///   (the `s^j` term of (1c));
    /// * per-stream transient workspace and boundary activations;
    /// * for `k > 1` streams: each extra executor needs its own gradient
    ///   buffer over the window and its own workspace (§IV-A keeps a single
    ///   copy of parameters).
    pub fn gpu_usage(&self, m: usize) -> u64 {
        let batch = self.cfg.batch as u64;
        let per_stream_batch = (self.cfg.batch as u64).div_ceil(self.streams as u64);
        let resident: u64 = self.pinned_layers().map(|l| l.full_state_bytes()).sum();
        let block = match self.max_block() {
            Some(b) => b,
            None => return resident,
        };
        let m = m as u64;
        let ckpt = block.act_checkpoint_bytes * batch;
        let first_window = m * (block.full_state_bytes() + ckpt);
        let slot = block.bp_state_bytes() + ckpt;
        let sliding = (m + 1) * slot; // +1 incoming buffer
        let workspace = block.act_workspace_bytes * per_stream_batch * self.streams as u64;
        let boundary = memory::boundary_activation_bytes(&self.cfg) * batch * 2;
        let extra_streams = (self.streams as u64 - 1) * (m * block.grad_bytes());
        resident + first_window + sliding + workspace + boundary + extra_streams
    }

    /// CPU RAM bytes required (pinned model-state storage for every
    /// offloadable layer, §III-E3, or the NVMe staging cache).
    pub fn cpu_usage(&self) -> u64 {
        let all_states: u64 = self.blocks().map(|l| l.full_state_bytes()).sum();
        match self.cold_tier {
            ColdTier::CpuRam => all_states,
            ColdTier::Nvme { cpu_cache_layers } => {
                let per_layer = self.max_block().map_or(0, |b| b.full_state_bytes());
                (cpu_cache_layers as u64 * per_layer).min(all_states)
            }
        }
    }

    /// NVMe bytes required (zero without the NVMe tier).
    ///
    /// The swap file holds the FP32 parameter image only: gradients are
    /// consumed in flight by the CPU optimizers, and Adam moments live in
    /// the CPU staging cache for the layers being touched (the paper's
    /// §III-G scenario is fine-tuning, not from-scratch training).
    /// Calibrated against Fig. 10: the 2 TB device admits the ~0.5 T
    /// parameter models the paper reports.
    pub fn nvme_usage(&self) -> u64 {
        match self.cold_tier {
            ColdTier::CpuRam => 0,
            ColdTier::Nvme { .. } => self.blocks().map(|l| l.param_bytes()).sum(),
        }
    }

    /// Usable device capacity on `platform` (after runtime reservation).
    pub fn gpu_capacity(platform: &Platform) -> u64 {
        memory::usable_device_bytes(platform.gpu.mem_bytes)
    }

    /// Usable host capacity on `platform` for pinned model states.
    pub fn cpu_capacity(platform: &Platform) -> u64 {
        if platform.nodes > 1 {
            (platform.cpu.ram_bytes as f64 * cal::CLUSTER_PINNED_FRACTION) as u64
        } else {
            (platform.cpu.ram_bytes as f64 * cal::HOST_USABLE_FRACTION) as u64
        }
    }

    /// Whether the plan fits the platform with window `m`.
    pub fn feasible(&self, platform: &Platform, m: usize) -> bool {
        if self.gpu_usage(m) > Self::gpu_capacity(platform) {
            return false;
        }
        if self.cpu_usage() > Self::cpu_capacity(platform) {
            return false;
        }
        if let Some(nvme) = platform.nvme {
            if self.nvme_usage() > nvme.capacity {
                return false;
            }
        } else if self.nvme_usage() > 0 {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::{common_1_7b, model_39_4b, ModelConfig};

    #[test]
    fn gpu_usage_monotone_in_window() {
        let plan = StrongholdMemPlan::new(common_1_7b(), 1, ColdTier::CpuRam);
        let mut last = 0;
        for m in 1..10 {
            let u = plan.gpu_usage(m);
            assert!(u > last);
            last = u;
        }
    }

    #[test]
    fn the_39b_model_fits_v100_platform() {
        // The paper's headline: 39.5B trains on one 32 GB V100 + 755 GB host.
        let plan = StrongholdMemPlan::new(model_39_4b(), 1, ColdTier::CpuRam);
        let v100 = Platform::v100_server();
        assert!(plan.feasible(&v100, 4), "39.4B must fit with a window of 4");
    }

    #[test]
    fn a_45b_model_exceeds_host_ram() {
        let cfg = ModelConfig::new(570, 2560, 16); // ~44.9B
        let plan = StrongholdMemPlan::new(cfg, 1, ColdTier::CpuRam);
        let v100 = Platform::v100_server();
        assert!(
            !plan.feasible(&v100, 1),
            "45B should exceed the CPU pinned budget"
        );
    }

    #[test]
    fn nvme_tier_moves_pressure_off_host() {
        let cfg = ModelConfig::new(1000, 2560, 16); // ~79B
        let v100 = Platform::v100_server();
        let ram_only = StrongholdMemPlan::new(cfg, 1, ColdTier::CpuRam);
        assert!(!ram_only.feasible(&v100, 1));
        let nvme = StrongholdMemPlan::new(
            cfg,
            1,
            ColdTier::Nvme {
                cpu_cache_layers: 32,
            },
        );
        assert!(
            nvme.feasible(&v100, 1),
            "NVMe tier should admit the 79B model"
        );
        assert!(nvme.nvme_usage() > 0);
        assert!(nvme.cpu_usage() < ram_only.cpu_usage());
    }

    #[test]
    fn extra_streams_cost_memory() {
        let one = StrongholdMemPlan::new(common_1_7b(), 1, ColdTier::CpuRam);
        let four = StrongholdMemPlan::new(common_1_7b(), 4, ColdTier::CpuRam);
        assert!(four.gpu_usage(4) > one.gpu_usage(4));
    }

    #[test]
    fn fixed_bytes_policy_equivalent_for_homogeneous_layers() {
        // For Transformer stacks (identical blocks) the byte-budget mode
        // admits exactly budget / slot_bytes layers — same as FixedLayers.
        let sizes = vec![100u64; 12];
        let by_layers = WindowPolicy::FixedLayers(4);
        let by_bytes = WindowPolicy::FixedBytes(400);
        assert_eq!(by_layers.layers_admitted(&sizes), 4);
        assert_eq!(by_bytes.layers_admitted(&sizes), 4);
        assert_eq!(
            by_layers.reserved_bytes(&sizes),
            by_bytes.reserved_bytes(&sizes)
        );
    }

    #[test]
    fn fixed_bytes_packs_more_small_layers() {
        // Heterogeneous model: one huge layer plus many small ones. A
        // layer-count window must size every slot for the giant; the byte
        // budget dynamically fits more of the small layers (§III-D).
        let sizes = vec![1000, 100, 100, 100, 100, 100, 100];
        let budget = WindowPolicy::FixedLayers(2).reserved_bytes(&sizes); // 2000
        let by_bytes = WindowPolicy::FixedBytes(budget);
        // Conservative (largest-first) packing: 1000 + 9x100 would be 1900,
        // but only 6 small layers exist -> giant + 6 small = 1600 <= 2000.
        assert!(by_bytes.layers_admitted(&sizes) > 2);
    }

    #[test]
    fn zero_budget_admits_nothing() {
        let p = WindowPolicy::FixedBytes(0);
        assert_eq!(p.layers_admitted(&[10, 20]), 0);
    }

    #[test]
    fn cluster_capacity_uses_pinned_fraction() {
        let v100 = Platform::v100_server();
        let a10 = Platform::a10_cluster_8();
        let f_single = StrongholdMemPlan::cpu_capacity(&v100) as f64 / v100.cpu.ram_bytes as f64;
        let f_cluster = StrongholdMemPlan::cpu_capacity(&a10) as f64 / a10.cpu.ram_bytes as f64;
        assert!(f_single > 0.7);
        assert!(f_cluster < 0.2);
    }
}
