//! User-level memory management (§III-E3).
//!
//! Native framework caching allocates `n×k` device buffers for an `n`-layer
//! model with `k` tensors per layer — impossible when the model exceeds
//! device memory. STRONGHOLD instead reserves `m×k` buffers once at warm-up
//! and recycles them round-robin; host-side staging uses pinned (page-locked)
//! buffers so transfers can run on an idle copy stream.
//!
//! The pool counts raw allocator operations so the Fig. 14 ablation can
//! price the difference between pooled and per-tensor allocation.

use crate::telemetry::{Counter, Gauge, Telemetry};

/// Allocation strategy — the Fig. 14 ablation toggles this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocStrategy {
    /// STRONGHOLD's reserved pool: one-off `m×k` allocations, recycled.
    Pooled,
    /// Naive per-use allocation: every acquire/release hits the device
    /// allocator (the behaviour the paper's §III-E3 baseline suffers).
    PerTensor,
}

/// A reserved device-buffer pool for the working window.
#[derive(Debug)]
pub struct DeviceBufferPool {
    /// Bytes per slot (one layer's device footprint).
    slot_bytes: u64,
    /// Tensors per layer (`k`), priced per raw allocation in naive mode.
    tensors_per_layer: usize,
    strategy: AllocStrategy,
    free: Vec<usize>,
    total_slots: usize,
    raw_alloc_ops: u64,
    raw_free_ops: u64,
    acquires: u64,
    /// Telemetry: acquire served from the reserved pool.
    c_hit: Counter,
    /// Telemetry: acquire that had to hit the raw device allocator.
    c_miss: Counter,
    /// Telemetry: release returning buffers to the raw allocator instead
    /// of the pool.
    c_evict: Counter,
    /// Telemetry: live slots in use (with peak).
    g_in_use: Gauge,
}

impl DeviceBufferPool {
    /// Reserves `slots` buffers of `slot_bytes` each with `tensors_per_layer`
    /// tensors per slot (no telemetry).
    pub fn new(
        slots: usize,
        slot_bytes: u64,
        tensors_per_layer: usize,
        strategy: AllocStrategy,
    ) -> Self {
        DeviceBufferPool::with_telemetry(
            slots,
            slot_bytes,
            tensors_per_layer,
            strategy,
            &Telemetry::disabled(),
        )
    }

    /// [`DeviceBufferPool::new`] recording `bufpool.hit` / `bufpool.miss` /
    /// `bufpool.evict` counters and the `bufpool.in_use` gauge into `tel`.
    pub fn with_telemetry(
        slots: usize,
        slot_bytes: u64,
        tensors_per_layer: usize,
        strategy: AllocStrategy,
        tel: &Telemetry,
    ) -> Self {
        assert!(slots > 0);
        let raw_alloc_ops = match strategy {
            // One-off m×k reservation at warm-up (§III-E3).
            AllocStrategy::Pooled => (slots * tensors_per_layer) as u64,
            AllocStrategy::PerTensor => 0,
        };
        DeviceBufferPool {
            slot_bytes,
            tensors_per_layer,
            strategy,
            free: (0..slots).rev().collect(),
            total_slots: slots,
            raw_alloc_ops,
            raw_free_ops: 0,
            acquires: 0,
            c_hit: tel.counter("bufpool.hit"),
            c_miss: tel.counter("bufpool.miss"),
            c_evict: tel.counter("bufpool.evict"),
            g_in_use: tel.gauge("bufpool.in_use"),
        }
    }

    /// Total reserved bytes.
    pub fn reserved_bytes(&self) -> u64 {
        self.total_slots as u64 * self.slot_bytes
    }

    /// Acquires a free buffer; returns its slot id.
    ///
    /// # Panics
    /// Panics when the pool is exhausted (scheduler bug).
    pub fn acquire(&mut self) -> usize {
        let slot = self.free.pop().expect("device buffer pool exhausted");
        self.acquires += 1;
        match self.strategy {
            AllocStrategy::Pooled => self.c_hit.incr(),
            AllocStrategy::PerTensor => {
                self.raw_alloc_ops += self.tensors_per_layer as u64;
                self.c_miss.incr();
            }
        }
        self.g_in_use.add(1);
        slot
    }

    /// Returns a buffer to the pool.
    pub fn release(&mut self, slot: usize) {
        assert!(slot < self.total_slots, "bad slot {slot}");
        assert!(!self.free.contains(&slot), "double release of slot {slot}");
        if self.strategy == AllocStrategy::PerTensor {
            self.raw_free_ops += self.tensors_per_layer as u64;
            self.c_evict.incr();
        }
        self.g_in_use.add(-1);
        self.free.push(slot);
    }

    /// Free-slot count.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Raw device-allocator calls so far (allocs).
    pub fn raw_alloc_ops(&self) -> u64 {
        self.raw_alloc_ops
    }

    /// Raw device-allocator calls so far (frees).
    pub fn raw_free_ops(&self) -> u64 {
        self.raw_free_ops
    }

    /// Lifetime acquires (diagnostics).
    pub fn acquires(&self) -> u64 {
        self.acquires
    }

    /// The strategy in force.
    pub fn strategy(&self) -> AllocStrategy {
        self.strategy
    }
}

/// Registry of pinned host staging buffers, one per offloadable layer
/// (allocated once at model load, §III-E3).
#[derive(Debug, Default)]
pub struct PinnedHostRegistry {
    bytes_per_layer: Vec<u64>,
}

impl PinnedHostRegistry {
    /// Registers pinned buffers for each layer's state size.
    pub fn new(bytes_per_layer: Vec<u64>) -> Self {
        PinnedHostRegistry { bytes_per_layer }
    }

    /// Total pinned bytes (counts against the host pinned budget).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_layer.iter().sum()
    }

    /// Pinned bytes for one layer.
    pub fn layer_bytes(&self, layer: usize) -> u64 {
        self.bytes_per_layer[layer]
    }

    /// Number of registered layers.
    pub fn len(&self) -> usize {
        self.bytes_per_layer.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.bytes_per_layer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_allocs_once() {
        let mut p = DeviceBufferPool::new(4, 100, 12, AllocStrategy::Pooled);
        assert_eq!(p.raw_alloc_ops(), 48); // m*k one-off
        for _ in 0..3 {
            let s = p.acquire();
            p.release(s);
        }
        assert_eq!(p.raw_alloc_ops(), 48, "recycling must not re-allocate");
        assert_eq!(p.raw_free_ops(), 0);
        assert_eq!(p.acquires(), 3);
    }

    #[test]
    fn per_tensor_allocs_every_time() {
        let mut p = DeviceBufferPool::new(4, 100, 12, AllocStrategy::PerTensor);
        assert_eq!(p.raw_alloc_ops(), 0);
        for _ in 0..5 {
            let s = p.acquire();
            p.release(s);
        }
        assert_eq!(p.raw_alloc_ops(), 60);
        assert_eq!(p.raw_free_ops(), 60);
    }

    #[test]
    fn acquire_release_cycle_is_lifo_round_robin() {
        let mut p = DeviceBufferPool::new(2, 10, 1, AllocStrategy::Pooled);
        let a = p.acquire();
        let b = p.acquire();
        assert_ne!(a, b);
        assert_eq!(p.available(), 0);
        p.release(a);
        assert_eq!(p.acquire(), a);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut p = DeviceBufferPool::new(1, 10, 1, AllocStrategy::Pooled);
        p.acquire();
        p.acquire();
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut p = DeviceBufferPool::new(2, 10, 1, AllocStrategy::Pooled);
        let s = p.acquire();
        p.release(s);
        p.release(s);
    }

    #[test]
    fn telemetry_hit_miss_evict() {
        let tel = Telemetry::enabled();
        let mut pooled = DeviceBufferPool::with_telemetry(2, 10, 3, AllocStrategy::Pooled, &tel);
        let a = pooled.acquire();
        let b = pooled.acquire();
        pooled.release(a);
        pooled.release(b);
        assert_eq!(tel.counter("bufpool.hit").get(), 2);
        assert_eq!(tel.counter("bufpool.miss").get(), 0);
        assert_eq!(tel.counter("bufpool.evict").get(), 0);
        assert_eq!(tel.gauge("bufpool.in_use").peak(), 2);
        assert_eq!(tel.gauge("bufpool.in_use").get(), 0);

        let mut naive = DeviceBufferPool::with_telemetry(2, 10, 3, AllocStrategy::PerTensor, &tel);
        let s = naive.acquire();
        naive.release(s);
        assert_eq!(tel.counter("bufpool.miss").get(), 1);
        assert_eq!(tel.counter("bufpool.evict").get(), 1);
    }

    #[test]
    fn pinned_registry_totals() {
        let r = PinnedHostRegistry::new(vec![10, 20, 30]);
        assert_eq!(r.total_bytes(), 60);
        assert_eq!(r.layer_bytes(1), 20);
        assert_eq!(r.len(), 3);
    }
}
