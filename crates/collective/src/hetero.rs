//! Heterogeneous concurrent collectives (§III-E2).
//!
//! Native frameworks let only one tensor type (CPU or CUDA) participate in a
//! collective at a time; STRONGHOLD extends NCCL and Gloo so CPU- and
//! GPU-tensor collectives proceed *concurrently*. The reproduction models
//! this as two independent collective channels, each with its own worker
//! thread, sharing one submission interface. The unit tests prove real
//! concurrency (a CPU op and a GPU op that can only finish if both are in
//! flight at once) — the property the paper's optimization needs.

use std::sync::Arc;

use crossbeam_channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use crate::real::ring_allreduce_sum;

/// Which device domain a collective operates on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// CPU tensors (Gloo channel).
    Cpu,
    /// GPU tensors (NCCL channel).
    Gpu,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A handle that resolves when the submitted collective completes.
pub struct CollectiveHandle {
    done: Arc<(Mutex<bool>, Condvar)>,
}

impl CollectiveHandle {
    /// Blocks until the collective finishes.
    pub fn wait(&self) {
        let (lock, cvar) = &*self.done;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
    }

    /// Non-blocking completion check.
    pub fn is_done(&self) -> bool {
        *self.done.0.lock()
    }
}

/// Two independent collective channels (CPU + GPU) behind one interface.
pub struct HeteroCollectives {
    cpu_tx: Sender<Job>,
    gpu_tx: Sender<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HeteroCollectives {
    /// Spawns the two channel workers.
    pub fn new() -> Self {
        let (cpu_tx, cpu_rx) = unbounded::<Job>();
        let (gpu_tx, gpu_rx) = unbounded::<Job>();
        let mk = |rx: crossbeam_channel::Receiver<Job>, name: &str| {
            std::thread::Builder::new()
                .name(format!("hetero-{name}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn collective worker")
        };
        let workers = vec![mk(cpu_rx, "cpu"), mk(gpu_rx, "gpu")];
        HeteroCollectives {
            cpu_tx,
            gpu_tx,
            workers,
        }
    }

    /// Submits an arbitrary collective job on a domain channel; returns a
    /// completion handle. Jobs on the *same* domain serialize; jobs on
    /// different domains run concurrently.
    pub fn submit(&self, domain: Domain, job: impl FnOnce() + Send + 'static) -> CollectiveHandle {
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let done2 = Arc::clone(&done);
        let wrapped: Job = Box::new(move || {
            job();
            let (lock, cvar) = &*done2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let tx = match domain {
            Domain::Cpu => &self.cpu_tx,
            Domain::Gpu => &self.gpu_tx,
        };
        tx.send(wrapped).expect("collective channel closed");
        CollectiveHandle { done }
    }

    /// Convenience: all-reduce a set of rank buffers on a domain channel.
    pub fn allreduce(
        &self,
        domain: Domain,
        mut buffers: Vec<Vec<f32>>,
    ) -> (CollectiveHandle, Arc<Mutex<Vec<Vec<f32>>>>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let handle = self.submit(domain, move || {
            ring_allreduce_sum(&mut buffers);
            *out2.lock() = buffers;
        });
        (handle, out)
    }
}

impl Default for HeteroCollectives {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for HeteroCollectives {
    fn drop(&mut self) {
        // Close the channels so workers exit, then join.
        let (dead_tx, _) = unbounded::<Job>();
        self.cpu_tx = dead_tx.clone();
        self.gpu_tx = dead_tx;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn cpu_and_gpu_collectives_run_concurrently() {
        // Each job waits on a 2-party barrier: they can only both finish if
        // the two domain channels are genuinely concurrent.
        let hc = HeteroCollectives::new();
        let barrier = Arc::new(Barrier::new(2));
        let b1 = Arc::clone(&barrier);
        let b2 = Arc::clone(&barrier);
        let h1 = hc.submit(Domain::Cpu, move || {
            b1.wait();
        });
        let h2 = hc.submit(Domain::Gpu, move || {
            b2.wait();
        });
        h1.wait();
        h2.wait();
    }

    #[test]
    fn same_domain_serializes_in_order() {
        let hc = HeteroCollectives::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = Arc::clone(&counter);
            handles.push(hc.submit(Domain::Cpu, move || {
                // Each job observes exactly its submission index.
                let seen = c.fetch_add(1, Ordering::SeqCst);
                assert_eq!(seen, i);
            }));
        }
        for h in handles {
            h.wait();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn allreduce_through_channel() {
        let hc = HeteroCollectives::new();
        let bufs = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let (h, out) = hc.allreduce(Domain::Gpu, bufs);
        h.wait();
        let out = out.lock();
        assert_eq!(out[0], vec![4.0, 6.0]);
        assert_eq!(out[1], vec![4.0, 6.0]);
    }

    #[test]
    fn handle_is_done_after_wait() {
        let hc = HeteroCollectives::new();
        let h = hc.submit(Domain::Cpu, || {});
        h.wait();
        assert!(h.is_done());
    }
}
