//! The canonical reduction order shared by every gradient fan-in.
//!
//! f32 addition is not associative, so "the sum of the per-sample
//! gradients" is only well-defined once an association is fixed. The
//! STRONGHOLD reproduction fixes it **once, here**: every fan-in — samples
//! within a trainer, executor micro-batches, and data-parallel replicas —
//! reduces over a fixed pairwise binary tree with floor-half splits:
//!
//! ```text
//! T(lo, hi) = leaf(lo)                       if hi − lo == 1
//!           = T(lo, mid) + T(mid, hi)        with mid = lo + (hi − lo)/2
//! ```
//!
//! Two properties make this the right canonical order:
//!
//! * **Shard alignment.** For `n` divisible by a power-of-two replica count
//!   `w`, the top `log2 w` levels of `T(0, n)` split exactly at the
//!   contiguous shard boundaries `n/w`. A replica that tree-reduces its own
//!   shard computes precisely the subtree `T(r·n/w, (r+1)·n/w)`, and
//!   combining the `w` shard partials with the same tree over the rank
//!   index reconstructs `T(0, n)` **bit-for-bit**. This is what lets
//!   N-replica data parallelism match single-replica training exactly.
//! * **Schedule independence.** The tree depends only on index ranges,
//!   never on arrival order, thread interleaving, or how a buffer was cut
//!   into buckets — the determinism the equivalence suite pins down.
//!
//! [`FoldPlan`] precomputes the merge schedule so a trainer can stream
//! leaves in index order with at most `depth ≈ log2 n + 1` live partial
//! accumulators, instead of materializing all `n` leaves.

/// Precomputed merge schedule for a left-to-right streaming evaluation of
/// the canonical tree over `len` leaves.
///
/// Processing leaf `i` pushes one partial onto a stack; the schedule then
/// prescribes [`FoldPlan::merges_after`]`(i)` merges of the top two stack
/// entries. After the last leaf the stack holds exactly the root.
#[derive(Clone, Debug, Default)]
pub struct FoldPlan {
    len: usize,
    merges: Vec<u8>,
    depth: usize,
}

fn schedule(merges: &mut [u8], lo: usize, hi: usize) {
    if hi - lo <= 1 {
        return;
    }
    let mid = lo + (hi - lo) / 2;
    schedule(merges, lo, mid);
    schedule(merges, mid, hi);
    // The subtree (lo, hi) completes right after its last leaf.
    merges[hi - 1] += 1;
}

impl FoldPlan {
    /// A plan for `n` leaves.
    pub fn new(n: usize) -> FoldPlan {
        let mut p = FoldPlan::default();
        p.set_len(n);
        p
    }

    /// Re-targets the plan to `n` leaves, reusing the schedule buffer (no
    /// allocation when `n` shrinks or repeats — the zero-allocation step
    /// loop re-plans only when the batch size changes).
    pub fn set_len(&mut self, n: usize) {
        if self.len == n && (n == 0 || self.depth > 0) {
            return;
        }
        self.len = n;
        self.merges.clear();
        self.merges.resize(n, 0);
        schedule(&mut self.merges, 0, n);
        let mut d = 0usize;
        let mut max = 0usize;
        for &m in &self.merges {
            d += 1;
            max = max.max(d);
            d -= m as usize;
        }
        debug_assert!(n == 0 || d == 1);
        self.depth = max;
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the plan covers zero leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of live partials a streaming evaluation needs.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// How many stack merges follow leaf `i`.
    pub fn merges_after(&self, i: usize) -> usize {
        self.merges[i] as usize
    }
}

/// Streams the canonical fold through a fixed set of reusable accumulator
/// `slots` (at least [`FoldPlan::depth`] of them). `leaf(i, slot)` must
/// *overwrite* `slot` with leaf `i`'s value; `merge(dst, src)` must fold
/// `src` into `dst` (`dst += src`). The root lands in `slots[0]`.
///
/// With zero leaves the slots are untouched (callers zero `slots[0]`
/// beforehand when an empty fold must mean "zero gradient").
pub fn fold_with<S>(
    plan: &FoldPlan,
    slots: &mut [S],
    mut leaf: impl FnMut(usize, &mut S),
    mut merge: impl FnMut(&mut S, &S),
) {
    assert!(
        slots.len() >= plan.depth(),
        "fold_with: {} slots for depth {}",
        slots.len(),
        plan.depth()
    );
    let mut d = 0usize;
    for i in 0..plan.len() {
        leaf(i, &mut slots[d]);
        d += 1;
        for _ in 0..plan.merges_after(i) {
            let (lo, hi) = slots.split_at_mut(d - 1);
            merge(&mut lo[d - 2], &hi[0]);
            d -= 1;
        }
    }
    debug_assert!(plan.is_empty() || d == 1);
}

/// Folds a stream of owned partials (already in index order) down the
/// canonical tree; returns the root, or `None` for an empty stream.
pub fn fold_owned<T>(
    plan: &FoldPlan,
    items: impl IntoIterator<Item = T>,
    mut merge: impl FnMut(&mut T, T),
) -> Option<T> {
    let mut stack: Vec<T> = Vec::with_capacity(plan.depth());
    let mut n = 0usize;
    for (i, item) in items.into_iter().enumerate() {
        stack.push(item);
        for _ in 0..plan.merges_after(i) {
            let top = stack.pop().expect("fold stack");
            merge(stack.last_mut().expect("fold stack"), top);
        }
        n = i + 1;
    }
    assert_eq!(
        n,
        plan.len(),
        "fold_owned: {n} items for a {}-leaf plan",
        plan.len()
    );
    stack.pop()
}

/// The canonical sum of a slice: `T(0, n)` with the values as leaves.
///
/// # Examples
///
/// ```
/// use stronghold_collective::order::tree_sum;
///
/// // (1 + 2) + (3 + 4): fixed association, independent of sharding.
/// assert_eq!(tree_sum(&[1.0, 2.0, 3.0, 4.0]), 10.0);
/// let halves = [tree_sum(&[1.0, 2.0]), tree_sum(&[3.0, 4.0])];
/// assert_eq!(tree_sum(&halves), tree_sum(&[1.0, 2.0, 3.0, 4.0]));
/// ```
pub fn tree_sum(xs: &[f32]) -> f32 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        n => {
            let mid = n / 2;
            tree_sum(&xs[..mid]) + tree_sum(&xs[mid..])
        }
    }
}

/// Elementwise canonical sum across `srcs` (one slice per rank, identical
/// lengths), written into `dst` starting at `srcs[*][off..]`. This is the
/// reduction the real collectives apply at every rank, so all ranks hold
/// identical bits regardless of delivery order.
pub fn tree_reduce_into(dst: &mut [f32], srcs: &[&[f32]], off: usize) {
    match srcs.len() {
        0 => dst.fill(0.0),
        1 => dst.copy_from_slice(&srcs[0][off..off + dst.len()]),
        2 => {
            let (a, b) = (srcs[0], srcs[1]);
            for (j, d) in dst.iter_mut().enumerate() {
                *d = a[off + j] + b[off + j];
            }
        }
        4 => {
            let (a, b, c, e) = (srcs[0], srcs[1], srcs[2], srcs[3]);
            for (j, d) in dst.iter_mut().enumerate() {
                *d = (a[off + j] + b[off + j]) + (c[off + j] + e[off + j]);
            }
        }
        w => {
            fn val(srcs: &[&[f32]], j: usize, lo: usize, hi: usize) -> f32 {
                if hi - lo == 1 {
                    srcs[lo][j]
                } else {
                    let mid = lo + (hi - lo) / 2;
                    val(srcs, j, lo, mid) + val(srcs, j, mid, hi)
                }
            }
            for (j, d) in dst.iter_mut().enumerate() {
                *d = val(srcs, off + j, 0, w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Direct recursive evaluation of the tree over explicit leaves — the
    /// specification the streaming plan must match.
    fn spec(xs: &[f64]) -> f64 {
        match xs.len() {
            1 => xs[0],
            n => {
                let mid = n / 2;
                spec(&xs[..mid]) + spec(&xs[mid..])
            }
        }
    }

    #[test]
    fn plan_matches_spec_for_small_sizes() {
        for n in 1..40usize {
            let xs: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) as f64).sin()).collect();
            let plan = FoldPlan::new(n);
            let mut slots = vec![0.0f64; plan.depth()];
            fold_with(&plan, &mut slots, |i, s| *s = xs[i], |a, b| *a += *b);
            assert_eq!(slots[0].to_bits(), spec(&xs).to_bits(), "n={n}");
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        assert_eq!(FoldPlan::new(1).depth(), 1);
        assert_eq!(FoldPlan::new(2).depth(), 2);
        assert_eq!(FoldPlan::new(4).depth(), 3);
        assert_eq!(FoldPlan::new(8).depth(), 4);
        assert!(FoldPlan::new(1024).depth() <= 11);
    }

    #[test]
    fn shard_partials_reassemble_bitwise() {
        // The property data parallelism rests on: shard subtrees combined
        // with the rank tree equal the whole tree, bit for bit.
        let xs: Vec<f32> = (0..64)
            .map(|i| ((i * 13 + 5) as f32).sin() * 1e-3)
            .collect();
        let whole = tree_sum(&xs);
        for w in [1usize, 2, 4, 8] {
            let shard = xs.len() / w;
            let partials: Vec<f32> = (0..w)
                .map(|r| tree_sum(&xs[r * shard..(r + 1) * shard]))
                .collect();
            assert_eq!(tree_sum(&partials).to_bits(), whole.to_bits(), "w={w}");
        }
    }

    #[test]
    fn fold_owned_matches_fold_with() {
        let xs: Vec<f32> = (0..13).map(|i| (i as f32).cos()).collect();
        let plan = FoldPlan::new(xs.len());
        let mut slots = vec![0.0f32; plan.depth()];
        fold_with(&plan, &mut slots, |i, s| *s = xs[i], |a, b| *a += *b);
        let owned = fold_owned(&plan, xs.iter().copied(), |a, b| *a += b).unwrap();
        assert_eq!(owned.to_bits(), slots[0].to_bits());
        assert_eq!(owned.to_bits(), tree_sum(&xs).to_bits());
    }

    #[test]
    fn set_len_reuses_buffer() {
        let mut p = FoldPlan::new(16);
        let cap = 16;
        p.set_len(8);
        p.set_len(16);
        assert!(p.merges.capacity() >= cap);
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn reduce_into_matches_tree_sum_per_element() {
        for w in 1..9usize {
            let srcs: Vec<Vec<f32>> = (0..w)
                .map(|r| (0..17).map(|j| ((r * 31 + j) as f32).sin()).collect())
                .collect();
            let refs: Vec<&[f32]> = srcs.iter().map(|v| v.as_slice()).collect();
            let mut dst = vec![0.0f32; 17];
            tree_reduce_into(&mut dst, &refs, 0);
            for j in 0..17 {
                let col: Vec<f32> = srcs.iter().map(|v| v[j]).collect();
                assert_eq!(dst[j].to_bits(), tree_sum(&col).to_bits(), "w={w} j={j}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_shard_alignment(exp in 0u32..7, wexp in 0u32..3, seed in 0u64..1000) {
            // n a power of two, w a power of two dividing n.
            let n = 1usize << (exp + wexp);
            let w = 1usize << wexp;
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as i32 % 2001 - 1000) as f32 / 997.0
            };
            let xs: Vec<f32> = (0..n).map(|_| next()).collect();
            let shard = n / w;
            let partials: Vec<f32> =
                (0..w).map(|r| tree_sum(&xs[r * shard..(r + 1) * shard])).collect();
            prop_assert_eq!(tree_sum(&partials).to_bits(), tree_sum(&xs).to_bits());
        }
    }
}
