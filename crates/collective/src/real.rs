//! Real multi-threaded collectives over in-memory buffers.
//!
//! These are the functional substitutes for NCCL (GPU tensors) and Gloo (CPU
//! tensors). Two transports share one reduction semantics:
//!
//! * [`ring_allreduce_sum`] — one thread per rank, channels between ring
//!   neighbours; each rank circulates the **raw** contributions for `w − 1`
//!   hops and then reduces locally.
//! * [`Communicator`] / [`CommRank`] — a rendezvous for ranks that already
//!   live on caller-owned threads (the data-parallel trainer's replicas):
//!   every rank publishes its contribution, waits on a barrier, and reduces
//!   all `w` contributions locally.
//!
//! Both apply the *same* canonical pairwise tree over the rank index
//! ([`crate::order::tree_reduce_into`]), so:
//!
//! * results are bit-identical across runs, thread interleavings, and
//!   transports — the reduction order depends only on rank numbering;
//! * results are invariant to how a gradient buffer is cut into buckets,
//!   because the association is over ranks, never over elements;
//! * each rank sends its full `E`-element contribution to the other `w − 1`
//!   ranks, so a step's traffic is exactly `w·(w − 1)·E` elements — the
//!   `V_dp` shape of §III-F that [`crate::volume::v_dp_exact`] predicts and
//!   the traffic-validation tests measure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::order::tree_reduce_into;

/// Ring all-reduce (sum) across `buffers`, in place: afterwards every rank
/// holds the canonical pairwise-tree sum of all inputs.
///
/// Each rank forwards raw contributions around the ring for `w − 1` hops
/// (collecting every other rank's original buffer), then reduces all `w`
/// contributions with the canonical tree over the rank index. Each rank
/// therefore sends `(w − 1)·len` elements: `w·(w − 1)·len` in total.
///
/// # Examples
///
/// ```
/// use stronghold_collective::ring_allreduce_sum;
///
/// let mut ranks = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
/// ring_allreduce_sum(&mut ranks);
/// assert_eq!(ranks[0], vec![111.0, 222.0]);
/// assert_eq!(ranks[2], ranks[0]);
/// ```
///
/// # Panics
/// Panics if buffers have different lengths.
pub fn ring_allreduce_sum(buffers: &mut [Vec<f32>]) {
    let w = buffers.len();
    if w <= 1 {
        return;
    }
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "ring_allreduce_sum: mismatched buffer lengths"
    );
    if len == 0 {
        return;
    }

    // Channel from rank r to rank (r+1) % w. Payload: (origin rank, data).
    type Hop = (usize, Vec<f32>);
    let mut senders: Vec<Option<Sender<Hop>>> = Vec::with_capacity(w);
    let mut receivers: Vec<Option<Receiver<Hop>>> = (0..w).map(|_| None).collect();
    for r in 0..w {
        let (tx, rx) = bounded::<(usize, Vec<f32>)>(2);
        senders.push(Some(tx));
        receivers[(r + 1) % w] = Some(rx);
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(w);
        for (r, buf) in buffers.iter_mut().enumerate() {
            let tx = senders[r].take().expect("sender");
            let rx = receivers[r].take().expect("receiver");
            handles.push(scope.spawn(move || {
                let mut contributions: Vec<Option<Vec<f32>>> = (0..w).map(|_| None).collect();
                contributions[r] = Some(buf.clone());
                // Circulate raw buffers: on each hop, forward the
                // contribution received last (starting with our own).
                let mut outgoing = (r, buf.clone());
                for _ in 0..w - 1 {
                    tx.send(outgoing).expect("ring send");
                    let (origin, data) = rx.recv().expect("ring recv");
                    outgoing = (origin, data.clone());
                    contributions[origin] = Some(data);
                }
                // Local reduce in canonical rank order.
                let owned: Vec<Vec<f32>> = contributions
                    .into_iter()
                    .map(|c| c.expect("contribution"))
                    .collect();
                let srcs: Vec<&[f32]> = owned.iter().map(|v| v.as_slice()).collect();
                tree_reduce_into(buf, &srcs, 0);
            }));
        }
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    });
}

/// Ring all-gather: every rank contributes its buffer; returns the
/// concatenation (in rank order) that each rank would hold.
pub fn ring_allgather(parts: &[Vec<f32>]) -> Vec<f32> {
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

/// Reference all-reduce: the canonical pairwise tree over the rank index —
/// exactly what every real transport must reproduce bit-for-bit.
pub fn allreduce_reference(buffers: &[Vec<f32>]) -> Vec<f32> {
    let len = buffers[0].len();
    let mut acc = vec![0.0f32; len];
    let srcs: Vec<&[f32]> = buffers.iter().map(|v| v.as_slice()).collect();
    tree_reduce_into(&mut acc, &srcs, 0);
    acc
}

struct CommShared {
    world: usize,
    /// One contribution slot per rank. Writers hold the lock only between
    /// the two barriers of their own call, so readers never block writers.
    slots: Vec<RwLock<Vec<f32>>>,
    barrier: Barrier,
    bytes: AtomicU64,
    flushes: AtomicU64,
}

/// Shared-memory rendezvous collective for `world` ranks that live on
/// caller-owned threads (the data-parallel replicas).
///
/// [`Communicator::new`] hands out one [`CommRank`] per rank; every rank
/// must then issue the *same sequence* of [`CommRank::allreduce_vec`] calls
/// with identically-shaped arguments (the usual SPMD collective contract —
/// a mismatched sequence deadlocks on the barrier, exactly like NCCL).
pub struct Communicator {
    shared: Arc<CommShared>,
}

impl Communicator {
    /// A communicator over `world` ranks, with per-rank handles to move
    /// onto the replica threads.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn new(world: usize) -> (Communicator, Vec<CommRank>) {
        assert!(world > 0, "Communicator: world must be positive");
        let shared = Arc::new(CommShared {
            world,
            slots: (0..world).map(|_| RwLock::new(Vec::new())).collect(),
            barrier: Barrier::new(world),
            bytes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        });
        let ranks = (0..world)
            .map(|rank| CommRank {
                rank,
                shared: Arc::clone(&shared),
            })
            .collect();
        (Communicator { shared }, ranks)
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.shared.world
    }

    /// Total bytes moved through the communicator so far, summed over all
    /// ranks: `w·(w − 1)·4·elements` per all-reduce.
    pub fn bytes_moved(&self) -> u64 {
        self.shared.bytes.load(Ordering::Acquire)
    }

    /// Number of all-reduce rendezvous completed (counted once per
    /// collective, not per rank).
    pub fn flushes(&self) -> u64 {
        self.shared.flushes.load(Ordering::Acquire)
    }
}

/// One rank's handle to a [`Communicator`]. `Send` — move it onto the
/// replica's thread.
pub struct CommRank {
    rank: usize,
    shared: Arc<CommShared>,
}

impl CommRank {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.shared.world
    }

    /// All-reduce (sum) over a single contiguous buffer.
    pub fn allreduce(&self, buf: &mut [f32]) {
        self.allreduce_vec(&mut [buf]);
    }

    /// Vectored all-reduce (sum): the logical contribution is the
    /// concatenation of `parts`, reduced elementwise across ranks with the
    /// canonical rank tree and scattered back into `parts` in place.
    ///
    /// Because the reduction associates over *ranks*, the result for any
    /// element is independent of how the surrounding buffer was cut into
    /// parts — bucketing gradients into different flush granularities
    /// cannot change training results (the bucket-boundary invariance the
    /// proptests pin down).
    ///
    /// Every rank must call this with the same total element count.
    pub fn allreduce_vec(&self, parts: &mut [&mut [f32]]) {
        let shared = &*self.shared;
        let total: usize = parts.iter().map(|p| p.len()).sum();
        if shared.world == 1 || total == 0 {
            return;
        }
        {
            let mut slot = shared.slots[self.rank].write();
            slot.clear();
            slot.reserve(total);
            for p in parts.iter() {
                slot.extend_from_slice(p);
            }
        }
        // Publish barrier: all contributions visible before anyone reads.
        shared.barrier.wait();
        {
            let guards: Vec<_> = shared.slots.iter().map(|s| s.read()).collect();
            let srcs: Vec<&[f32]> = guards.iter().map(|g| g.as_slice()).collect();
            let mut off = 0usize;
            for p in parts.iter_mut() {
                tree_reduce_into(p, &srcs, off);
                off += p.len();
            }
        }
        // Drain barrier: nobody rewrites a slot while a peer still reads.
        shared.barrier.wait();
        // Each rank's contribution travels to the other w − 1 ranks.
        shared
            .bytes
            .fetch_add(((shared.world - 1) * total * 4) as u64, Ordering::AcqRel);
        if self.rank == 0 {
            shared.flushes.fetch_add(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_rank_sum() {
        let mut bufs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 20.0, 30.0, 40.0]];
        ring_allreduce_sum(&mut bufs);
        assert_eq!(bufs[0], vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(bufs[1], bufs[0]);
    }

    #[test]
    fn single_rank_noop() {
        let mut bufs = vec![vec![5.0, 6.0]];
        ring_allreduce_sum(&mut bufs);
        assert_eq!(bufs[0], vec![5.0, 6.0]);
    }

    #[test]
    fn uneven_world_sizes() {
        for w in 2..6usize {
            let mut bufs: Vec<Vec<f32>> = (1..=w).map(|r| vec![r as f32; 5]).collect();
            ring_allreduce_sum(&mut bufs);
            let want = (w * (w + 1) / 2) as f32;
            for b in &bufs {
                assert_eq!(b, &vec![want; 5]);
            }
        }
    }

    #[test]
    fn len_smaller_than_world() {
        let mut bufs = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        ring_allreduce_sum(&mut bufs);
        for b in &bufs {
            assert_eq!(b, &vec![10.0]);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let make = || {
            (0..4)
                .map(|r| {
                    (0..97)
                        .map(|i| ((r * 31 + i) as f32).sin())
                        .collect::<Vec<f32>>()
                })
                .collect::<Vec<_>>()
        };
        let mut a = make();
        let mut b = make();
        ring_allreduce_sum(&mut a);
        ring_allreduce_sum(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn allgather_concatenates() {
        let parts = vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0]];
        assert_eq!(ring_allgather(&parts), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    fn random_bufs(w: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as i32 % 2001 - 1000) as f32 / 997.0
        };
        (0..w).map(|_| (0..len).map(|_| next()).collect()).collect()
    }

    fn run_communicator(bufs: &[Vec<f32>], splits: &[usize]) -> (Vec<Vec<f32>>, u64, u64) {
        let w = bufs.len();
        let (comm, ranks) = Communicator::new(w);
        let mut out = bufs.to_vec();
        std::thread::scope(|scope| {
            for (rank, buf) in ranks.into_iter().zip(out.iter_mut()) {
                let splits = splits.to_vec();
                scope.spawn(move || {
                    let mut rest: &mut [f32] = buf;
                    let mut parts: Vec<&mut [f32]> = Vec::new();
                    let mut prev = 0usize;
                    for &s in &splits {
                        let (head, tail) = rest.split_at_mut(s - prev);
                        parts.push(head);
                        rest = tail;
                        prev = s;
                    }
                    parts.push(rest);
                    rank.allreduce_vec(&mut parts);
                });
            }
        });
        (out, comm.bytes_moved(), comm.flushes())
    }

    #[test]
    fn communicator_matches_ring_and_reference_bitwise() {
        let bufs = random_bufs(4, 97, 7);
        let expect = allreduce_reference(&bufs);
        let mut ring = bufs.clone();
        ring_allreduce_sum(&mut ring);
        let (comm, bytes, flushes) = run_communicator(&bufs, &[]);
        for r in 0..4 {
            assert_eq!(ring[r], expect, "ring rank {r}");
            assert_eq!(comm[r], expect, "communicator rank {r}");
        }
        assert_eq!(bytes, (4 * 3 * 97 * 4) as u64, "w(w-1)·len·4 bytes");
        assert_eq!(flushes, 1);
    }

    #[test]
    fn communicator_single_rank_is_free() {
        let bufs = random_bufs(1, 16, 3);
        let (out, bytes, flushes) = run_communicator(&bufs, &[4, 9]);
        assert_eq!(out[0], bufs[0]);
        assert_eq!(bytes, 0);
        assert_eq!(flushes, 0);
    }

    /// Satellite: repeat-run interleaving matrix. The OS schedules the rank
    /// threads differently on every run; results must not care.
    #[test]
    fn interleaving_repeat_run_matrix() {
        for w in [2usize, 3, 4] {
            let bufs = random_bufs(w, 257, w as u64);
            let expect = allreduce_reference(&bufs);
            for run in 0..8 {
                let (out, _, _) = run_communicator(&bufs, &[]);
                for (r, got) in out.iter().enumerate() {
                    assert_eq!(*got, expect, "w={w} run={run} rank={r}");
                }
                let mut ring = bufs.clone();
                ring_allreduce_sum(&mut ring);
                for (r, got) in ring.iter().enumerate() {
                    assert_eq!(*got, expect, "ring w={w} run={run} rank={r}");
                }
            }
        }
    }

    /// A sequence of vectored all-reduces with per-rank jitter: later calls
    /// must not be perturbed by earlier rendezvous (barrier reuse is sound).
    #[test]
    fn sequential_collectives_stay_deterministic() {
        let w = 3usize;
        let rounds = 5usize;
        let all: Vec<Vec<Vec<f32>>> = (0..rounds)
            .map(|k| random_bufs(w, 64, 100 + k as u64))
            .collect();
        let run = || {
            let (comm, ranks) = Communicator::new(w);
            let mut state: Vec<Vec<Vec<f32>>> = (0..w)
                .map(|r| all.iter().map(|round| round[r].clone()).collect())
                .collect();
            std::thread::scope(|scope| {
                for (r, (rank, mine)) in ranks.into_iter().zip(state.iter_mut()).enumerate() {
                    scope.spawn(move || {
                        for (k, buf) in mine.iter_mut().enumerate() {
                            if (r + k) % 2 == 0 {
                                std::thread::yield_now();
                            }
                            rank.allreduce(buf);
                        }
                    });
                }
            });
            assert_eq!(comm.flushes(), rounds as u64);
            state
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        for (k, round) in all.iter().enumerate() {
            let expect = allreduce_reference(round);
            for (r, mine) in a.iter().enumerate() {
                assert_eq!(mine[k], expect, "round {k} rank {r}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Ring, rendezvous, and reference agree **bitwise** for any world
        /// size and length.
        #[test]
        fn prop_transports_match_reference_bitwise(
            w in 1usize..6,
            len in 0usize..64,
            seed in 0u64..1000
        ) {
            let bufs = random_bufs(w, len, seed);
            let mut ring = bufs.clone();
            ring_allreduce_sum(&mut ring);
            let (comm, _, _) = run_communicator(&bufs, &[]);
            if len > 0 {
                let expect = allreduce_reference(&bufs);
                for r in 0..w {
                    prop_assert_eq!(&ring[r], &expect);
                    prop_assert_eq!(&comm[r], &expect);
                }
            }
        }

        /// Bucket-boundary invariance: cutting the contribution at arbitrary
        /// points changes nothing, bit for bit.
        #[test]
        fn prop_bucket_boundaries_are_invisible(
            w in 1usize..5,
            len in 1usize..96,
            cuts in proptest::collection::vec(0usize..96, 0..4),
            seed in 0u64..1000
        ) {
            let bufs = random_bufs(w, len, seed);
            let mut splits: Vec<usize> = cuts.into_iter().map(|c| c % (len + 1)).collect();
            splits.sort_unstable();
            splits.dedup();
            splits.retain(|&s| s > 0 && s < len);
            let (whole, bytes_whole, _) = run_communicator(&bufs, &[]);
            let (cut, bytes_cut, _) = run_communicator(&bufs, &splits);
            prop_assert_eq!(&whole, &cut);
            prop_assert_eq!(bytes_whole, bytes_cut);
            prop_assert_eq!(bytes_whole, (w * (w - 1) * len * 4) as u64);
        }
    }
}
