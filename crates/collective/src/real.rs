//! Real multi-threaded ring collectives over in-memory buffers.
//!
//! These are the functional substitutes for NCCL (GPU tensors) and Gloo (CPU
//! tensors): each rank runs on its own thread and exchanges chunks with its
//! ring neighbour over channels. Reduction order around the ring is fixed by
//! rank topology — not by thread scheduling — so results are bit-identical
//! across runs and thread interleavings, which the equivalence tests rely on.

use crossbeam_channel::{bounded, Receiver, Sender};

/// Splits `len` into `w` contiguous chunk ranges (first chunks get the
/// remainder, matching NCCL's partitioning).
fn chunk_ranges(len: usize, w: usize) -> Vec<std::ops::Range<usize>> {
    let base = len / w;
    let rem = len % w;
    let mut out = Vec::with_capacity(w);
    let mut start = 0;
    for i in 0..w {
        let sz = base + usize::from(i < rem);
        out.push(start..start + sz);
        start += sz;
    }
    out
}

/// Ring all-reduce (sum) across `buffers`, in place: afterwards every rank
/// holds the element-wise sum of all inputs.
///
/// Runs reduce-scatter followed by all-gather with one thread per rank.
///
/// # Examples
///
/// ```
/// use stronghold_collective::ring_allreduce_sum;
///
/// let mut ranks = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
/// ring_allreduce_sum(&mut ranks);
/// assert_eq!(ranks[0], vec![111.0, 222.0]);
/// assert_eq!(ranks[2], ranks[0]);
/// ```
///
/// # Panics
/// Panics if buffers have different lengths.
pub fn ring_allreduce_sum(buffers: &mut [Vec<f32>]) {
    let w = buffers.len();
    if w <= 1 {
        return;
    }
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "ring_allreduce_sum: mismatched buffer lengths"
    );
    if len == 0 {
        return;
    }

    let ranges = chunk_ranges(len, w);

    // Channel from rank r to rank (r+1) % w.
    let mut senders: Vec<Option<Sender<Vec<f32>>>> = Vec::with_capacity(w);
    let mut receivers: Vec<Option<Receiver<Vec<f32>>>> = (0..w).map(|_| None).collect();
    for r in 0..w {
        let (tx, rx) = bounded::<Vec<f32>>(2);
        senders.push(Some(tx));
        receivers[(r + 1) % w] = Some(rx);
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(w);
        for (r, buf) in buffers.iter_mut().enumerate() {
            let tx = senders[r].take().expect("sender");
            let rx = receivers[r].take().expect("receiver");
            let ranges = ranges.clone();
            handles.push(scope.spawn(move || {
                // Reduce-scatter: after w-1 steps, rank r owns the fully
                // reduced chunk (r+1) % w.
                for step in 0..w - 1 {
                    let send_idx = (r + w - step) % w;
                    let recv_idx = (r + w - step - 1) % w;
                    tx.send(buf[ranges[send_idx].clone()].to_vec())
                        .expect("ring send");
                    let incoming = rx.recv().expect("ring recv");
                    for (dst, src) in buf[ranges[recv_idx].clone()].iter_mut().zip(incoming) {
                        *dst += src;
                    }
                }
                // All-gather: circulate the reduced chunks.
                for step in 0..w - 1 {
                    let send_idx = (r + 1 + w - step) % w;
                    let recv_idx = (r + w - step) % w;
                    tx.send(buf[ranges[send_idx].clone()].to_vec())
                        .expect("ring send");
                    let incoming = rx.recv().expect("ring recv");
                    buf[ranges[recv_idx].clone()].copy_from_slice(&incoming);
                }
            }));
        }
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    });
}

/// Ring all-gather: every rank contributes its buffer; returns the
/// concatenation (in rank order) that each rank would hold.
pub fn ring_allgather(parts: &[Vec<f32>]) -> Vec<f32> {
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

/// Reference all-reduce: sequential sum in rank order (used by tests; also
/// the exact reduction order the ring produces for chunk ownership).
pub fn allreduce_reference(buffers: &[Vec<f32>]) -> Vec<f32> {
    let len = buffers[0].len();
    let mut acc = vec![0.0f32; len];
    for b in buffers {
        for (a, v) in acc.iter_mut().zip(b.iter()) {
            *a += v;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_rank_sum() {
        let mut bufs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 20.0, 30.0, 40.0]];
        ring_allreduce_sum(&mut bufs);
        assert_eq!(bufs[0], vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(bufs[1], bufs[0]);
    }

    #[test]
    fn single_rank_noop() {
        let mut bufs = vec![vec![5.0, 6.0]];
        ring_allreduce_sum(&mut bufs);
        assert_eq!(bufs[0], vec![5.0, 6.0]);
    }

    #[test]
    fn uneven_length_chunks() {
        // len=5 across 3 ranks -> chunks 2,2,1.
        let mut bufs = vec![vec![1.0; 5], vec![2.0; 5], vec![3.0; 5]];
        ring_allreduce_sum(&mut bufs);
        for b in &bufs {
            assert_eq!(b, &vec![6.0; 5]);
        }
    }

    #[test]
    fn len_smaller_than_world() {
        let mut bufs = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        ring_allreduce_sum(&mut bufs);
        for b in &bufs {
            assert_eq!(b, &vec![10.0]);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let make = || {
            (0..4)
                .map(|r| {
                    (0..97)
                        .map(|i| ((r * 31 + i) as f32).sin())
                        .collect::<Vec<f32>>()
                })
                .collect::<Vec<_>>()
        };
        let mut a = make();
        let mut b = make();
        ring_allreduce_sum(&mut a);
        ring_allreduce_sum(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn allgather_concatenates() {
        let parts = vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0]];
        assert_eq!(ring_allgather(&parts), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn prop_matches_reference(
            w in 1usize..6,
            len in 0usize..64,
            seed in 0u64..1000
        ) {
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as i32 % 1000) as f32 / 100.0
            };
            let bufs: Vec<Vec<f32>> = (0..w).map(|_| (0..len).map(|_| next()).collect()).collect();
            let expect = allreduce_reference(&bufs);
            let mut got = bufs.clone();
            ring_allreduce_sum(&mut got);
            for b in &got {
                for (x, y) in b.iter().zip(expect.iter()) {
                    prop_assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()));
                }
            }
        }
    }
}
