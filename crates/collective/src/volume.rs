//! Cross-server communication-volume model (§III-F).
//!
//! When a model that traditionally required `w`-way model parallelism fits a
//! single GPU under STRONGHOLD, the extra GPUs can run data parallelism
//! instead. The paper quantifies the traffic of both regimes per iteration:
//!
//! * `V_dp = (w−1)·w · (12·n·hd² + hd·vs)` — gradient all-reduce volume,
//! * `V_mp = (w−1)·w · n · bs · seq · hd` — activation exchange volume,
//!
//! and the saving of converting MP to DP is `V_mp / V_dp`.

/// Inputs to the volume model.
#[derive(Clone, Copy, Debug)]
pub struct VolumeParams {
    /// Parallelism width `w`.
    pub w: u64,
    /// Transformer layers `n`.
    pub n: u64,
    /// Hidden size `hd`.
    pub hd: u64,
    /// Batch size per iteration `bs`.
    pub bs: u64,
    /// Sequence length `seq`.
    pub seq: u64,
    /// Vocabulary size `vs`.
    pub vs: u64,
}

/// Data-parallel traffic per iteration (elements).
pub fn v_dp(p: &VolumeParams) -> u64 {
    (p.w - 1) * p.w * (12 * p.n * p.hd * p.hd + p.hd * p.vs)
}

/// Model-parallel traffic per iteration (elements).
pub fn v_mp(p: &VolumeParams) -> u64 {
    (p.w - 1) * p.w * p.n * p.bs * p.seq * p.hd
}

/// §III-F data-parallel traffic with the per-replica gradient element count
/// instantiated exactly: every rank sends its `grad_elements` contribution
/// to each of the other `w − 1` ranks, so one step's all-reduce moves
/// `w·(w − 1)·grad_elements` elements.
///
/// [`v_dp`] is this formula with `grad_elements` set to the paper's model
/// estimate `12·n·hd² + hd·vs`; the traffic-validation tests use the
/// *actual* parameter count of the trained model and assert the bytes
/// measured through [`crate::real`] match with zero tolerance.
pub fn v_dp_exact(w: u64, grad_elements: u64) -> u64 {
    w * w.saturating_sub(1) * grad_elements
}

/// Traffic reduction factor `V_mp / V_dp` achieved by converting `w`-way
/// model parallelism into `w`-way data parallelism.
///
/// # Examples
///
/// ```
/// use stronghold_collective::volume::{volume_ratio, VolumeParams};
///
/// // Deep, narrow model with a large batch: DP traffic is far below MP.
/// let p = VolumeParams { w: 8, n: 200, hd: 1024, bs: 64, seq: 1024, vs: 30_000 };
/// assert!(volume_ratio(&p) > 1.0);
/// ```
pub fn volume_ratio(p: &VolumeParams) -> f64 {
    v_mp(p) as f64 / v_dp(p) as f64
}

/// The paper's simplified closed form for seq = 1024, vs = 30 k:
/// `V_mp/V_dp = bs / (3·hd/256 + 30/n)`.
pub fn volume_ratio_simplified(p: &VolumeParams) -> f64 {
    p.bs as f64 / (3.0 * p.hd as f64 / 256.0 + 30.0 / p.n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> VolumeParams {
        VolumeParams {
            w: 8,
            n: 50,
            hd: 4096,
            bs: 16,
            seq: 1024,
            vs: 30_000,
        }
    }

    #[test]
    fn simplified_matches_exact_form() {
        // With seq=1024 and vs=30k the closed form approximates the exact
        // ratio to within a few percent (30k vs 30×1024 rounding).
        let p = params();
        let exact = volume_ratio(&p);
        let simple = volume_ratio_simplified(&p);
        assert!(
            (exact - simple).abs() / exact < 0.05,
            "exact {exact} vs simplified {simple}"
        );
    }

    #[test]
    fn ratio_grows_with_batch() {
        let mut p = params();
        let r16 = volume_ratio(&p);
        p.bs = 32;
        let r32 = volume_ratio(&p);
        assert!((r32 / r16 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dp_wins_for_wide_models_small_batch() {
        // Wide hidden sizes make gradients (∝ hd²) expensive relative to
        // activations (∝ hd): DP traffic exceeds MP traffic at small batch.
        let p = params();
        assert!(volume_ratio(&p) < 1.0);
        // Deep-and-narrow with large batch flips the comparison.
        let p2 = VolumeParams {
            w: 8,
            n: 200,
            hd: 1024,
            bs: 64,
            seq: 1024,
            vs: 30_000,
        };
        assert!(volume_ratio(&p2) > 1.0, "ratio {}", volume_ratio(&p2));
    }

    #[test]
    fn volumes_zero_for_single_worker() {
        let mut p = params();
        p.w = 1;
        assert_eq!(v_dp(&p), 0);
        assert_eq!(v_mp(&p), 0);
    }

    #[test]
    fn exact_form_instantiates_the_paper_formula() {
        // v_dp IS v_dp_exact with the paper's element estimate plugged in.
        let p = params();
        let elements = 12 * p.n * p.hd * p.hd + p.hd * p.vs;
        assert_eq!(v_dp(&p), v_dp_exact(p.w, elements));
        assert_eq!(v_dp_exact(1, elements), 0);
        assert_eq!(v_dp_exact(4, 10), 4 * 3 * 10);
    }

    #[test]
    fn attention_plus_ffn_constant_is_12() {
        // 4·hd² (attention) + 8·hd² (FFN) per block, as derived in §III-F.
        let p = VolumeParams {
            w: 2,
            n: 1,
            hd: 10,
            bs: 1,
            seq: 1,
            vs: 0,
        };
        assert_eq!(v_dp(&p), 2 * 12 * 100);
    }
}
