//! Collective communication for the STRONGHOLD reproduction.
//!
//! Three pieces, mirroring §III-E2 and §III-F of the paper:
//!
//! * [`real`] — actual multi-threaded ring collectives over in-memory
//!   buffers, used by the functional substrate (the NCCL/Gloo substitute).
//! * [`hetero`] — concurrent CPU- and GPU-tensor collective channels; the
//!   paper's extension that lifts PyTorch's one-tensor-type-at-a-time
//!   restriction.
//! * [`volume`] — the analytical cross-server traffic model (`V_dp`,
//!   `V_mp`) of §III-F, used by Fig. 12 and the `comms` experiment.
//! * [`order`] — the canonical pairwise reduction tree every gradient
//!   fan-in shares, which is what makes data-parallel training bit-identical
//!   to single-replica training.

pub mod hetero;
pub mod order;
pub mod real;
pub mod volume;

pub use order::{fold_owned, fold_with, tree_sum, FoldPlan};
pub use real::{ring_allgather, ring_allreduce_sum, CommRank, Communicator};
pub use volume::{v_dp, v_dp_exact, v_mp, volume_ratio};
