#!/usr/bin/env bash
# Repo CI gate: release build, full test suite, lints, formatting.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> kernel-bench smoke (quick mode)"
# Bounded-shape sweep: catches kernel bench bit-rot and BENCH_kernels.json
# format drift without paying for the full sweep.
SMOKE_OUT="$PWD/target/BENCH_kernels_smoke.json"
STRONGHOLD_KBENCH_QUICK=1 BENCH_KERNELS_OUT="$SMOKE_OUT" cargo bench --bench kernels
test -s "$SMOKE_OUT"
grep -q '"mode": "quick"' "$SMOKE_OUT"
grep -q '"gflops_new"' "$SMOKE_OUT"
grep -q '"gflops_seed"' "$SMOKE_OUT"

echo "==> op-bench smoke (quick mode)"
# Bounded non-GEMM op sweep: catches ops bench bit-rot and BENCH_ops.json
# format drift without paying for the full sweep.
OPS_SMOKE_OUT="$PWD/target/BENCH_ops_smoke.json"
STRONGHOLD_OBENCH_QUICK=1 BENCH_OPS_OUT="$OPS_SMOKE_OUT" cargo bench --bench ops
test -s "$OPS_SMOKE_OUT"
grep -q '"mode": "quick"' "$OPS_SMOKE_OUT"
grep -q '"ns_new"' "$OPS_SMOKE_OUT"
grep -q '"ns_seed"' "$OPS_SMOKE_OUT"

echo "==> runtime-bench smoke (quick mode)"
# Bounded step-latency sweep: catches runtime bench bit-rot and
# BENCH_runtime.json format drift without paying for the full sweep.
RUNTIME_SMOKE_OUT="$PWD/target/BENCH_runtime_smoke.json"
STRONGHOLD_RBENCH_QUICK=1 BENCH_RUNTIME_OUT="$RUNTIME_SMOKE_OUT" cargo bench --bench runtime
test -s "$RUNTIME_SMOKE_OUT"
grep -q '"mode": "quick"' "$RUNTIME_SMOKE_OUT"
grep -q '"ns_per_step"' "$RUNTIME_SMOKE_OUT"
grep -q '"variant": "post"' "$RUNTIME_SMOKE_OUT"
# Autotuner smoke: the closed-loop controller must have run (rows carry its
# eval/resize counts) and, in quick mode, emitted live autotune.* gauges —
# the bench prints the gauge readback as gauge_window=N.
grep -q '"variant": "autotuned"' "$RUNTIME_SMOKE_OUT"
grep -q '"autotune_evals"' "$RUNTIME_SMOKE_OUT"
grep -q '"autotune_resizes"' "$RUNTIME_SMOKE_OUT"
RUNTIME_SMOKE_EVALS=$(grep -o '"autotune_evals": [0-9]*' "$RUNTIME_SMOKE_OUT" | head -1 | grep -o '[0-9]*')
test "$RUNTIME_SMOKE_EVALS" -gt 0
# Mixed-precision smoke: the bf16 sweep rows must have run, and the bench's
# own zero-tolerance cross-check (each bf16 row's H2D/D2H bytes exactly half
# its FP32 twin's at the same window/variant) must have passed.
grep -q '"precision": "bf16"' "$RUNTIME_SMOKE_OUT"
grep -q '"h2d_bytes_per_step"' "$RUNTIME_SMOKE_OUT"
grep -q '"precision_summary"' "$RUNTIME_SMOKE_OUT"
grep -q '"core_starved"' "$RUNTIME_SMOKE_OUT"
grep -q '"bf16_h2d_exactly_half": true' "$RUNTIME_SMOKE_OUT"
# Spill-tier smoke: the file-backed tier must actually have run — rows at
# two spill-worker configs with nonzero per-step spill traffic, each
# carrying the machine context (cores/core_starved) — and the bench's own
# zero-tolerance byte accounting (measured spill.* counters == tier-plan
# formulas x steps) must have passed.
grep -q '"variant": "spill"' "$RUNTIME_SMOKE_OUT"
grep -q '"spill_workers": 1' "$RUNTIME_SMOKE_OUT"
grep -q '"spill_workers": 2' "$RUNTIME_SMOKE_OUT"
grep -q '"spilled_layers"' "$RUNTIME_SMOKE_OUT"
SPILL_BYTES=$(grep -o '"spill_bytes_per_step": [0-9]*' "$RUNTIME_SMOKE_OUT" | head -1 | grep -o '[0-9]*')
test "$SPILL_BYTES" -gt 0
grep -q '"spill_bytes_exact": true' "$RUNTIME_SMOKE_OUT"
if grep -q '"spill_bytes_exact": false' "$RUNTIME_SMOKE_OUT"; then
  echo "spill byte accounting violated" >&2
  exit 1
fi

echo "==> dp-bench smoke (quick mode)"
# Bounded weak-scaling sweep: catches dp bench bit-rot and BENCH_dp.json
# format drift without paying for the full sweep. On a 1-core CI box the
# file records core_starved: true; the smoke only checks the format.
DP_SMOKE_OUT="$PWD/target/BENCH_dp_smoke.json"
STRONGHOLD_DPBENCH_QUICK=1 BENCH_DP_OUT="$DP_SMOKE_OUT" cargo bench --bench dp
test -s "$DP_SMOKE_OUT"
grep -q '"mode": "quick"' "$DP_SMOKE_OUT"
grep -q '"cores"' "$DP_SMOKE_OUT"
grep -q '"weak_scaling_efficiency"' "$DP_SMOKE_OUT"
grep -q '"allreduce_bytes_per_step"' "$DP_SMOKE_OUT"

echo "==> serving-bench smoke (quick mode)"
# Bounded continuous-vs-static serving sweep: catches serving bench bit-rot
# and BENCH_serving.json format drift, and enforces the bench's own
# machine-checked verdicts — continuous batching must out-serve padded
# static batching at every concurrency level (best-of-3 walls, identical
# greedy token streams), and latency percentiles must be ordered.
SERVING_SMOKE_OUT="$PWD/target/BENCH_serving_smoke.json"
STRONGHOLD_SBENCH_QUICK=1 BENCH_SERVING_OUT="$SERVING_SMOKE_OUT" cargo bench --bench serving
test -s "$SERVING_SMOKE_OUT"
grep -q '"mode": "quick"' "$SERVING_SMOKE_OUT"
grep -q '"engine": "static"' "$SERVING_SMOKE_OUT"
grep -q '"engine": "continuous"' "$SERVING_SMOKE_OUT"
grep -q '"p50_latency_ns"' "$SERVING_SMOKE_OUT"
grep -q '"p99_latency_ns"' "$SERVING_SMOKE_OUT"
grep -q '"core_starved"' "$SERVING_SMOKE_OUT"
SERVING_TOKENS=$(grep -o '"tokens": [0-9]*' "$SERVING_SMOKE_OUT" | head -1 | grep -o '[0-9]*')
test "$SERVING_TOKENS" -gt 0
grep -q '"p50_le_p99": true' "$SERVING_SMOKE_OUT"
grep -q '"continuous_beats_static": true' "$SERVING_SMOKE_OUT"
if grep -q '"continuous_beats_static": false' "$SERVING_SMOKE_OUT"; then
  echo "continuous batching lost to static batching" >&2
  exit 1
fi

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
