#!/usr/bin/env bash
# Repo CI gate: release build, full test suite, lints, formatting.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
